"""Tests for top-k probability profiles (the all-j-at-once extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_topk_probabilities
from repro.core.profile import (
    answer_sizes_by_k,
    minimal_k_for_threshold,
    topk_probability_profile,
)
from repro.datagen.sensors import panda_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from tests.conftest import uncertain_tables


class TestProfileCorrectness:
    @given(uncertain_tables(max_tuples=9), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_profile_column_j_equals_exact_prj(self, table, k):
        profiles = topk_probability_profile(table, TopKQuery(k=k))
        for j in range(1, k + 1):
            exact_j = exact_topk_probabilities(table, TopKQuery(k=j))
            for tid, expected in exact_j.items():
                assert profiles[tid][j - 1] == pytest.approx(expected, abs=1e-9)

    def test_panda_profile(self):
        profiles = topk_probability_profile(panda_table(), TopKQuery(k=2))
        assert profiles["R5"][1] == pytest.approx(0.704)
        # Pr^1(R5): R5 present and neither R1 nor R2 present
        assert profiles["R5"][0] == pytest.approx(0.8 * 0.7 * 0.6)

    @given(uncertain_tables(max_tuples=9))
    @settings(max_examples=25, deadline=None)
    def test_profiles_monotone_and_bounded(self, table):
        profiles = topk_probability_profile(table, TopKQuery(k=5))
        for tup in table:
            profile = profiles[tup.tid]
            assert np.all(np.diff(profile) >= -1e-12)
            assert profile[-1] <= tup.probability + 1e-9


class TestAnswerSizes:
    def test_sizes_monotone_in_k(self):
        table = panda_table()
        sizes = answer_sizes_by_k(table, TopKQuery(k=4), 0.35)
        assert sizes == sorted(sizes)

    def test_matches_individual_queries(self):
        from repro.core.exact import exact_ptk_query

        table = panda_table()
        sizes = answer_sizes_by_k(table, TopKQuery(k=3), 0.35)
        for j in range(1, 4):
            answer = exact_ptk_query(table, TopKQuery(k=j), 0.35)
            assert sizes[j - 1] == len(answer)

    def test_threshold_validation(self):
        with pytest.raises(QueryError):
            answer_sizes_by_k(panda_table(), TopKQuery(k=2), 0.0)


class TestMinimalK:
    def test_panda_minimal_k(self):
        result = minimal_k_for_threshold(panda_table(), TopKQuery(k=2), 0.35)
        # R5 passes already at k=1 (0.336 < 0.35? no: 0.336 < 0.35) -> k=2
        assert result["R5"] == 2
        assert result["R2"] == 2
        assert result["R1"] is None  # never reaches 0.35 within k=2

    def test_certain_top_tuple_passes_at_one(self):
        from tests.conftest import build_table

        table = build_table([1.0, 0.5], rule_groups=[])
        result = minimal_k_for_threshold(table, TopKQuery(k=2), 0.9)
        assert result["t0"] == 1

    def test_threshold_validation(self):
        with pytest.raises(QueryError):
            minimal_k_for_threshold(panda_table(), TopKQuery(k=2), 2.0)
