"""Tests for the state-materializing U-TopK scan (Challenge 2 baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.sensors import panda_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_vector_probabilities
from repro.semantics.statespace import utopk_by_state_scan, utopk_state_scan
from repro.semantics.utopk import utopk_query
from tests.conftest import build_table, uncertain_tables


class TestCorrectness:
    def test_panda(self):
        result = utopk_by_state_scan(panda_table(), TopKQuery(k=2))
        assert result.answer.vector == ("R5", "R3")
        assert result.answer.probability == pytest.approx(0.28)

    @given(uncertain_tables(max_tuples=9), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_best_first_search(self, table, k):
        query = TopKQuery(k=k)
        scan = utopk_by_state_scan(table, query)
        best_first = utopk_query(table, query)
        assert scan.answer.probability == pytest.approx(
            best_first.probability, abs=1e-9
        )

    @given(uncertain_tables(max_tuples=8), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_enumeration(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_topk_vector_probabilities(table, query)
        scan = utopk_by_state_scan(table, query)
        assert scan.answer.probability == pytest.approx(
            max(truth.values()), abs=1e-9
        )

    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            utopk_state_scan([], {}, k=0)

    def test_state_cap(self):
        table = build_table([0.5] * 14, rule_groups=[])
        with pytest.raises(QueryError):
            utopk_by_state_scan(table, TopKQuery(k=7), max_states=5)


class TestInstrumentation:
    def test_counters_populated(self):
        result = utopk_by_state_scan(panda_table(), TopKQuery(k=2))
        assert result.peak_states >= 1
        assert result.total_states >= result.peak_states
        assert 1 <= result.scan_depth <= 6

    def test_states_grow_with_uncertainty(self):
        # low-probability tuples give the best vector a low probability,
        # so the lower-bound pruning is weak and many states stay live;
        # near-certain tuples collapse the frontier immediately
        uncertain = build_table([0.3] * 20, rule_groups=[])
        certain = build_table([0.9] * 20, rule_groups=[])
        query = TopKQuery(k=5)
        uncertain_scan = utopk_by_state_scan(uncertain, query)
        certain_scan = utopk_by_state_scan(certain, query)
        assert uncertain_scan.peak_states > certain_scan.peak_states
        assert uncertain_scan.total_states > certain_scan.total_states

    def test_peak_states_exceed_ptk_state_for_uncertain_input(self):
        # the Challenge-2 comparison: PT-k keeps a (k+1)-entry vector,
        # the rank-sensitive scan materializes exponentially many states
        # at its frontier (2^(k-1) even in the friendliest uniform case)
        k = 5
        table = build_table([0.3] * 20, rule_groups=[])
        result = utopk_by_state_scan(table, TopKQuery(k=k))
        assert result.peak_states >= 2 ** (k - 1)
        assert result.peak_states > 10 * (k + 1)
