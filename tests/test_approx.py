"""Tests for the Chernoff prefilter (soundness is everything here)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import (
    PrefilterStats,
    chernoff_topk_bounds,
    ptk_with_prefilter,
)
from repro.core.exact import exact_ptk_query
from repro.core.subset_probability import subset_probabilities
from repro.datagen.sensors import panda_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from tests.conftest import build_table, uncertain_tables

probs = st.lists(st.floats(0.05, 0.95), min_size=0, max_size=12)


class TestBounds:
    @given(probs, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_bounds_bracket_true_value(self, probabilities, k):
        mu = sum(probabilities)
        true_f = float(subset_probabilities(probabilities, k).sum())
        f_lo, f_hi = chernoff_topk_bounds(mu, k)
        assert f_lo <= true_f + 1e-9
        assert true_f <= f_hi + 1e-9

    def test_degenerate_empty_set(self):
        f_lo, f_hi = chernoff_topk_bounds(0.0, 3)
        assert f_lo > 0.9  # N = 0 < 3 almost surely (here: surely)
        assert f_hi == 1.0

    def test_mass_far_above_k_rejects(self):
        f_lo, f_hi = chernoff_topk_bounds(500.0, 5)
        assert f_hi < 1e-6
        assert f_lo == 0.0

    def test_mass_far_below_k_accepts(self):
        f_lo, f_hi = chernoff_topk_bounds(1.0, 50)
        assert f_lo > 0.999

    def test_validation(self):
        with pytest.raises(QueryError):
            chernoff_topk_bounds(-1.0, 3)
        with pytest.raises(QueryError):
            chernoff_topk_bounds(1.0, 0)


class TestPrefilterSoundness:
    def test_panda_answers_exact(self):
        answer, _ = ptk_with_prefilter(panda_table(), TopKQuery(k=2), 0.35)
        assert answer.answer_set == {"R2", "R3", "R5"}

    @given(uncertain_tables(max_tuples=10), st.integers(1, 5),
           st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_matches_exact_engine(self, table, k, threshold):
        query = TopKQuery(k=k)
        exact = exact_ptk_query(table, query, threshold, pruning=False)
        filtered, _ = ptk_with_prefilter(table, query, threshold)
        assert filtered.answer_set == exact.answer_set

    def test_rejects_bad_threshold(self):
        with pytest.raises(QueryError):
            ptk_with_prefilter(panda_table(), TopKQuery(k=2), 0.0)

    def test_boundary_probability_matches_exact_engine(self):
        """Dominant set smaller than k: Pr(|T(t)| < k) is exactly 1.

        The last-ranked tuple has membership probability exactly equal
        to the threshold; a naive ``vector[:k].sum()`` lands an ulp
        below 1 and wrongly rejects it while the exact engine accepts.
        (Found by the hypothesis soundness fuzz above.)
        """
        table = build_table(
            [0.25, 0.30344946432812286, 0.5], [], scores=[24.0, 26.0, 2.0]
        )
        exact = exact_ptk_query(table, TopKQuery(k=3), 0.5, pruning=False)
        filtered, _ = ptk_with_prefilter(table, TopKQuery(k=3), 0.5)
        assert "t2" in exact.answer_set
        assert filtered.answer_set == exact.answer_set
        assert filtered.probabilities["t2"] == 0.5


class TestPrefilterEffectiveness:
    def test_most_tuples_decided_without_dp(self):
        table = generate_synthetic_table(
            SyntheticConfig(n_tuples=3000, n_rules=300, seed=9)
        )
        query = TopKQuery(k=50)
        answer, stats = ptk_with_prefilter(table, query, 0.3)
        assert stats.total == 3000
        # the bounds decide the overwhelming majority
        assert stats.decided_fraction > 0.9
        # and the answers still match the exact engine
        exact = exact_ptk_query(table, query, 0.3, pruning=False)
        assert answer.answer_set == exact.answer_set

    def test_stats_accounting(self):
        stats = PrefilterStats(decided_in=3, decided_out=5, evaluated=2)
        assert stats.total == 10
        assert stats.decided_fraction == pytest.approx(0.8)

    def test_low_membership_shortcut(self):
        table = build_table([0.9, 0.1], rule_groups=[])
        _, stats = ptk_with_prefilter(table, TopKQuery(k=1), 0.5)
        # t1 rejected by Pr(t) < p without bounds or DP
        assert stats.decided_out >= 1
