"""Tests for the UncertainDB facade."""

import pytest

from repro.core.sampling import SamplingConfig
from repro.datagen.sensors import panda_table
from repro.exceptions import QueryError, UnknownTupleError
from repro.query.engine import UncertainDB
from repro.query.topk import TopKQuery


@pytest.fixture
def db():
    database = UncertainDB()
    database.register(panda_table())
    return database


class TestCatalogue:
    def test_register_and_lookup(self, db):
        assert "panda_sightings" in db.tables()
        assert len(db.table("panda_sightings")) == 6

    def test_register_under_custom_name(self):
        database = UncertainDB()
        name = database.register(panda_table(), name="pandas")
        assert name == "pandas"
        assert database.table("pandas") is not None

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(QueryError):
            db.register(panda_table())

    def test_unknown_table_raises(self, db):
        with pytest.raises(UnknownTupleError):
            db.table("nope")

    def test_drop(self, db):
        db.drop("panda_sightings")
        assert db.tables() == []
        with pytest.raises(UnknownTupleError):
            db.drop("panda_sightings")

    def test_register_alias_keeps_warm_preparations(self, db):
        # Registering the *same* table object under a second name used to
        # invalidate its cached preparations (the invalidation in
        # register() hit the new table object, which is the old one
        # here).  Warm entries must survive.
        db.ptk("panda_sightings", k=2, threshold=0.35)
        assert db.prepare_cache.stats().entries == 1
        db.register(db.table("panda_sightings"), name="alias")
        assert db.prepare_cache.stats().entries == 1
        hits_before = db.prepare_cache.stats().hits
        db.ptk("alias", k=3, threshold=0.2)
        assert db.prepare_cache.stats().hits == hits_before + 1

    def test_drop_and_reregister_serves_fresh_preparations(self, db):
        db.ptk("panda_sightings", k=2, threshold=0.35)
        db.drop("panda_sightings")
        # drop() invalidates the old table object's entries...
        assert db.prepare_cache.stats().entries == 0
        # ...and a fresh registration under the same name never serves
        # the old table's preparations.
        fresh = panda_table()
        db.register(fresh)
        misses_before = db.prepare_cache.stats().misses
        db.ptk("panda_sightings", k=2, threshold=0.35)
        assert db.prepare_cache.stats().misses == misses_before + 1


class TestQueries:
    def test_ptk(self, db):
        answer = db.ptk("panda_sightings", k=2, threshold=0.35)
        assert answer.answer_set == {"R2", "R3", "R5"}

    def test_ptk_sampled(self, db):
        answer = db.ptk_sampled(
            "panda_sightings",
            k=2,
            threshold=0.35,
            config=SamplingConfig(sample_size=50_000, progressive=False, seed=5),
        )
        assert answer.answer_set == {"R2", "R3", "R5"}

    def test_utopk(self, db):
        answer = db.utopk("panda_sightings", k=2)
        assert answer.vector == ("R5", "R3")

    def test_ukranks(self, db):
        answer = db.ukranks("panda_sightings", k=2)
        assert answer.tuple_ids == ["R5", "R5"]

    def test_global_topk(self, db):
        result = db.global_topk("panda_sightings", k=2)
        assert [tid for tid, _ in result] == ["R5", "R2"]

    def test_expected_rank_topk(self, db):
        result = db.expected_rank_topk("panda_sightings", k=2)
        assert len(result) == 2
        values = [v for _, v in result]
        assert values == sorted(values)
        # R4 is certain and mid-ranked; it must beat flaky R1
        ranks = dict(db.expected_rank_topk("panda_sightings", k=6))
        assert ranks["R4"] < ranks["R1"]

    def test_topk_probabilities(self, db):
        probabilities = db.topk_probabilities("panda_sightings", k=2)
        assert probabilities["R5"] == pytest.approx(0.704)

    def test_expected_ranks(self, db):
        ranks = db.expected_ranks("panda_sightings")
        assert ranks["R1"] == pytest.approx(1.0)

    def test_explicit_query_object(self, db):
        answer = db.ptk(
            "panda_sightings", k=2, threshold=0.35, query=TopKQuery(k=2)
        )
        assert answer.answer_set == {"R2", "R3", "R5"}


class TestExplainPlan:
    def test_plan_fields(self, db):
        plan = db.explain_plan("panda_sightings", k=2, threshold=0.35)
        assert plan["n_tuples"] == 6
        assert 1 <= plan["estimated_scan_depth"] <= 6
        assert plan["recommended_method"] in ("exact", "sampling")

    def test_plan_depth_near_actual(self, db):
        plan = db.explain_plan("panda_sightings", k=2, threshold=0.35)
        answer = db.ptk("panda_sightings", k=2, threshold=0.35)
        assert abs(plan["estimated_scan_depth"] - answer.stats.scan_depth) <= 3


class TestComparison:
    def test_compare_semantics(self, db):
        comparison = db.compare_semantics("panda_sightings", k=2, threshold=0.35)
        assert comparison.ptk.answer_set == {"R2", "R3", "R5"}
        assert comparison.utopk.vector == ("R5", "R3")
        assert comparison.ukranks.tuple_ids == ["R5", "R5"]

    def test_mentioned_tuples_deduplicated(self, db):
        comparison = db.compare_semantics("panda_sightings", k=2, threshold=0.35)
        mentioned = comparison.mentioned_tuples()
        assert len(mentioned) == len(set(mentioned))
        assert set(mentioned) == {"R2", "R3", "R5"}

    def test_probabilities_cover_mentioned(self, db):
        comparison = db.compare_semantics("panda_sightings", k=2, threshold=0.35)
        for tid in comparison.mentioned_tuples():
            assert tid in comparison.topk_probabilities


class TestDropHygiene:
    """Dropping a table must forget its warm preparations entirely."""

    def test_drop_invalidates_warm_prepare_entries(self, db):
        db.ptk("panda_sightings", k=2, threshold=0.35)
        assert db.prepare_cache.stats().entries >= 1
        db.drop("panda_sightings")
        stats = db.prepare_cache.stats()
        assert stats.entries == 0
        assert stats.invalidations >= 1

    def test_reregistered_same_name_never_serves_old_prepare(self):
        from tests.conftest import build_table

        database = UncertainDB()
        database.register(
            build_table([0.9, 0.8, 0.7, 0.6], rule_groups=[], name="x")
        )
        first = database.ptk("x", k=3, threshold=0.5)
        assert first.answer_set == {"t0", "t1", "t2"}
        misses_before = database.prepare_cache.stats().misses
        database.drop("x")

        # Same name, entirely different contents: one high-probability
        # tuple ranked by a different score scale.
        database.register(
            build_table([1.0], rule_groups=[], scores=[42.0], name="x")
        )
        answer = database.ptk("x", k=3, threshold=0.5)
        assert answer.answer_set == {"t0"}
        assert answer.probabilities["t0"] == pytest.approx(1.0)
        # The answer came from a fresh preparation, not the stale one.
        assert database.prepare_cache.stats().misses == misses_before + 1

    def test_drop_unknown_table_raises(self, db):
        from repro.exceptions import UnknownTableError

        with pytest.raises(UnknownTableError):
            db.drop("never_registered")
