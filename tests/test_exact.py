"""Tests for the exact PT-k algorithm (all variants) against ground truth."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import (
    ExactVariant,
    exact_position_probabilities,
    exact_ptk_query,
    exact_topk_probabilities,
)
from repro.datagen.sensors import (
    PANDA_PT2_ANSWER_AT_035,
    PANDA_TOP2_PROBABILITIES,
    example3_table,
    panda_table,
)
from repro.exceptions import QueryError
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery
from repro.semantics.naive import (
    naive_position_probabilities,
    naive_topk_probabilities,
)
from tests.conftest import build_table, uncertain_tables

ALL_VARIANTS = list(ExactVariant)


class TestPaperValues:
    def test_panda_top2_probabilities(self):
        probabilities = exact_topk_probabilities(panda_table(), TopKQuery(k=2))
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert probabilities[tid] == pytest.approx(expected, abs=1e-9)

    def test_panda_pt2_answer(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        assert answer.answer_set == PANDA_PT2_ANSWER_AT_035

    def test_example3_values(self):
        probabilities = exact_topk_probabilities(example3_table(), TopKQuery(k=3))
        assert probabilities["t6"] == pytest.approx(0.32, abs=1e-9)
        assert probabilities["t7"] == pytest.approx(0.025, abs=1e-9)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_all_variants_reproduce_table3(self, variant):
        probabilities = exact_topk_probabilities(
            panda_table(), TopKQuery(k=2), variant=variant
        )
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert probabilities[tid] == pytest.approx(expected, abs=1e-9)


class TestValidation:
    def test_rejects_bad_threshold(self):
        table = panda_table()
        for bad in (-0.1, -1e-300, 1.5):
            with pytest.raises(QueryError):
                exact_ptk_query(table, TopKQuery(k=2), bad)

    def test_threshold_zero_is_full_scan_mode(self):
        # threshold == 0.0 is the explicit full-scan mode: every tuple's
        # Pr^k is computed, no membership decisions are made, and no
        # pruning rule may fire.
        table = panda_table()
        answer = exact_ptk_query(table, TopKQuery(k=2), 0.0)
        assert answer.answers == []
        assert answer.stats.stopped_by == "exhausted"
        assert answer.stats.scan_depth == len(table)
        assert set(answer.probabilities) == {t.tid for t in table}
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert answer.probabilities[tid] == pytest.approx(expected, abs=1e-9)

    def test_threshold_one_allowed(self):
        table = build_table([1.0, 0.5], rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=1), 1.0)
        assert answer.answers == ["t0"]


class TestAgainstNaive:
    @given(uncertain_tables(max_tuples=10), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_match_enumeration(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_topk_probabilities(table, query)
        for variant in ALL_VARIANTS:
            got = exact_topk_probabilities(table, query, variant=variant)
            for tid, expected in truth.items():
                assert got[tid] == pytest.approx(expected, abs=1e-9), (
                    variant,
                    tid,
                )

    @given(uncertain_tables(max_tuples=9), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_position_probabilities_match_enumeration(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_position_probabilities(table, query)
        got = exact_position_probabilities(table, query)
        for tid, expected in truth.items():
            for j in range(k):
                assert got[tid][j] == pytest.approx(expected[j], abs=1e-9)

    @given(
        uncertain_tables(max_tuples=10),
        st.integers(1, 5),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_answer_sets_match_enumeration(self, table, k, threshold):
        query = TopKQuery(k=k)
        truth = naive_topk_probabilities(table, query)
        answer = exact_ptk_query(table, query, threshold)
        for tid, probability in truth.items():
            # skip knife-edge cases where float noise flips >= comparisons
            if abs(probability - threshold) < 1e-9:
                continue
            assert (tid in answer.answer_set) == (probability >= threshold)


class TestPredicateHandling:
    def test_predicate_restricts_and_reweights(self):
        # removing tuples via the predicate frees rule mass
        table = build_table(
            [0.5, 0.4, 0.4, 0.3], rule_groups=[[1, 2]],
            scores=[40, 30, 20, 10],
        )
        query = TopKQuery(k=1, predicate=ScoreAbove(25))
        probabilities = exact_topk_probabilities(table, query)
        assert set(probabilities) == {"t0", "t1"}
        truth = naive_topk_probabilities(table, query)
        for tid, expected in truth.items():
            assert probabilities[tid] == pytest.approx(expected)


class TestStatsAndAnswerObject:
    def test_answers_in_ranking_order(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        assert answer.answers == ["R2", "R5", "R3"]  # by duration desc

    def test_stats_counts(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        stats = answer.stats
        assert stats.scan_depth <= 6
        assert stats.tuples_evaluated + stats.tuples_pruned == stats.scan_depth

    def test_probability_of_with_default(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        assert answer.probability_of("R2") == pytest.approx(0.4)
        assert answer.probability_of("nonexistent", default=0.0) == 0.0
        with pytest.raises(KeyError):
            answer.probability_of("nonexistent")

    def test_ranked_answers_sorted_by_probability(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        pairs = answer.ranked_answers()
        values = [p.probability for p in pairs]
        assert values == sorted(values, reverse=True)
        assert pairs[0].tid == "R5"

    def test_contains_and_len(self):
        answer = exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35)
        assert "R5" in answer
        assert "R1" not in answer
        assert len(answer) == 3

    def test_method_labels(self):
        for variant in ALL_VARIANTS:
            answer = exact_ptk_query(
                panda_table(), TopKQuery(k=2), 0.35, variant=variant
            )
            assert answer.method == variant.value


class TestInvariants:
    @given(uncertain_tables(max_tuples=10), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_total_mass_at_most_k(self, table, k):
        probabilities = exact_topk_probabilities(table, TopKQuery(k=k))
        assert math.fsum(probabilities.values()) <= k + 1e-9

    @given(uncertain_tables(max_tuples=10), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_membership(self, table, k):
        probabilities = exact_topk_probabilities(table, TopKQuery(k=k))
        for tup in table:
            assert probabilities[tup.tid] <= tup.probability + 1e-9

    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_k(self, table):
        # a tuple's top-k probability can only grow with k
        smaller = exact_topk_probabilities(table, TopKQuery(k=2))
        larger = exact_topk_probabilities(table, TopKQuery(k=4))
        for tid in smaller:
            assert larger[tid] >= smaller[tid] - 1e-9

    @given(uncertain_tables(max_tuples=10), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_k_at_least_table_size_gives_membership(self, table, k):
        # with k >= |T| every present tuple is in the top-k
        if k < len(table):
            k = len(table)
        probabilities = exact_topk_probabilities(table, TopKQuery(k=k))
        for tup in table:
            assert probabilities[tup.tid] == pytest.approx(
                tup.probability, abs=1e-9
            )
