"""Tests for the expected-rank semantics (closed form vs enumeration)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.worlds import enumerate_possible_worlds
from repro.query.topk import TopKQuery
from repro.semantics.expected_rank import (
    expected_rank_topk,
    expected_rank_values,
)
from tests.conftest import build_table, uncertain_tables


def enumerate_expected_ranks(table, query):
    """Ground truth by full world enumeration."""
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    position = {tup.tid: i for i, tup in enumerate(ranked)}
    by_id = {tup.tid: tup for tup in selected}
    result = {tid: 0.0 for tid in by_id}
    for world in enumerate_possible_worlds(selected):
        present = sorted(world.tuple_ids, key=lambda t: position[t])
        for tid in by_id:
            if tid in world.tuple_ids:
                rank = sum(
                    1 for other in present if position[other] < position[tid]
                )
            else:
                rank = len(present)
            result[tid] += world.probability * rank
    return result


class TestClosedForm:
    @given(uncertain_tables(max_tuples=8))
    @settings(max_examples=40, deadline=None)
    def test_matches_enumeration(self, table):
        query = TopKQuery(k=3)
        truth = enumerate_expected_ranks(table, query)
        got = expected_rank_values(table, query)
        for tid, expected in truth.items():
            assert got[tid] == pytest.approx(expected, abs=1e-9)

    def test_certain_top_tuple_has_rank_zero(self):
        table = build_table([1.0, 0.5], rule_groups=[])
        values = expected_rank_values(table, TopKQuery(k=2))
        assert values["t0"] == pytest.approx(0.0)

    def test_absent_tuple_penalised_by_world_size(self):
        # a near-never-present tuple's expected rank ~ E[|W|]
        table = build_table([0.9, 0.9, 0.001], rule_groups=[])
        values = expected_rank_values(table, TopKQuery(k=2))
        assert values["t2"] == pytest.approx(0.9 + 0.9, abs=0.01)

    def test_rule_mates_never_count_as_dominants(self):
        table = build_table([0.5, 0.4, 0.5], rule_groups=[[0, 1]])
        query = TopKQuery(k=2)
        truth = enumerate_expected_ranks(table, query)
        got = expected_rank_values(table, query)
        for tid, expected in truth.items():
            assert got[tid] == pytest.approx(expected, abs=1e-12)


class TestTopkSelection:
    def test_selects_smallest_expected_rank(self):
        table = build_table([0.9, 0.2, 0.8], rule_groups=[])
        top = expected_rank_topk(table, TopKQuery(k=2))
        assert [tid for tid, _ in top] == ["t0", "t2"]

    def test_values_ascending(self):
        table = build_table([0.5, 0.6, 0.4, 0.7], rule_groups=[])
        top = expected_rank_topk(table, TopKQuery(k=4))
        values = [v for _, v in top]
        assert values == sorted(values)

    def test_semantics_differ_from_ptk(self):
        # a moderately-probable top-scored tuple: it has the highest
        # Pr^1, but expected rank punishes its frequent absence and
        # prefers the reliably-present runner-up
        from repro.core.exact import exact_topk_probabilities

        table = build_table([0.55, 0.9, 0.9, 0.9], rule_groups=[])
        query = TopKQuery(k=1)
        ptk = exact_topk_probabilities(table, query)
        best_ptk = max(ptk, key=ptk.get)
        best_expected = expected_rank_topk(table, query)[0][0]
        assert best_ptk == "t0"  # Pr^1 = 0.55 beats 0.9 * 0.45
        assert best_expected == "t1"  # reliably present near the top
        assert best_ptk != best_expected
