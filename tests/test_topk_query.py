"""Unit tests for the TopKQuery object and per-world top-k evaluation."""

import pytest

from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery, top_k_ids_of_world, top_k_of_world


def make(tid, score):
    return UncertainTuple(tid=tid, score=score, probability=0.5)


class TestValidation:
    def test_rejects_zero_k(self):
        with pytest.raises(QueryError):
            TopKQuery(k=0)

    def test_rejects_negative_k(self):
        with pytest.raises(QueryError):
            TopKQuery(k=-3)

    def test_rejects_bool_k(self):
        with pytest.raises(QueryError):
            TopKQuery(k=True)

    def test_rejects_float_k(self):
        with pytest.raises(QueryError):
            TopKQuery(k=2.0)


class TestWorldEvaluation:
    def test_top_k_of_world(self):
        world = [make("a", 1), make("b", 5), make("c", 3)]
        assert top_k_ids_of_world(world, 2) == ["b", "c"]

    def test_world_smaller_than_k(self):
        world = [make("a", 1)]
        assert top_k_ids_of_world(world, 5) == ["a"]

    def test_empty_world(self):
        assert top_k_of_world([], 3) == []

    def test_predicate_applied_before_ranking(self):
        query = TopKQuery(k=2, predicate=ScoreAbove(2))
        world = [make("a", 1), make("b", 5), make("c", 3)]
        assert [t.tid for t in query.answer_on_world(world)] == ["b", "c"]
        query_strict = TopKQuery(k=2, predicate=ScoreAbove(4))
        assert [t.tid for t in query_strict.answer_on_world(world)] == ["b"]


class TestSelection:
    def build(self):
        table = UncertainTable()
        table.add("a", 30, 0.5)
        table.add("b", 20, 0.4)
        table.add("c", 10, 0.3)
        table.add_exclusive("r", "a", "c")
        return table

    def test_trivial_predicate_shares_table(self):
        table = self.build()
        query = TopKQuery(k=2)
        assert query.selected(table) is table

    def test_predicate_projects_table_and_rules(self):
        table = self.build()
        query = TopKQuery(k=2, predicate=ScoreAbove(15))
        selected = query.selected(table)
        assert sorted(t.tid for t in selected) == ["a", "b"]
        # rule reduced to {a}: a becomes independent
        assert selected.is_independent("a")

    def test_ranked_list(self):
        table = self.build()
        query = TopKQuery(k=2)
        assert [t.tid for t in query.ranked_list(table)] == ["a", "b", "c"]
