"""Integration tests crossing module boundaries on mid-size workloads."""

import pytest

from repro.core.exact import ExactVariant, exact_ptk_query, exact_topk_probabilities
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.io.jsonio import read_table_json, write_table_json
from repro.query.engine import UncertainDB
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery
from repro.stats.metrics import precision_recall


@pytest.fixture(scope="module")
def synthetic():
    return generate_synthetic_table(
        SyntheticConfig(n_tuples=2000, n_rules=200, seed=13)
    )


class TestVariantAgreementAtScale:
    def test_all_variants_agree_on_synthetic(self, synthetic):
        query = TopKQuery(k=40)
        reference = None
        for variant in ExactVariant:
            answer = exact_ptk_query(synthetic, query, 0.3, variant=variant)
            if reference is None:
                reference = answer
            else:
                assert answer.answer_set == reference.answer_set
                for tid, probability in reference.probabilities.items():
                    if tid in answer.probabilities:
                        assert answer.probabilities[tid] == pytest.approx(
                            probability, abs=1e-9
                        )

    def test_extension_ordering_rc_ar_lr(self, synthetic):
        query = TopKQuery(k=40)
        extensions = {}
        for variant in ExactVariant:
            answer = exact_ptk_query(synthetic, query, 0.3, variant=variant)
            extensions[variant] = answer.stats.subset_extensions
        assert extensions[ExactVariant.RC_LR] <= extensions[ExactVariant.RC_AR]
        assert extensions[ExactVariant.RC_AR] <= extensions[ExactVariant.RC]

    def test_pruned_scan_is_shallow(self, synthetic):
        answer = exact_ptk_query(synthetic, TopKQuery(k=40), 0.3)
        assert answer.stats.scan_depth < len(synthetic) / 3


class TestSamplingAgreesWithExact:
    def test_high_precision_recall(self, synthetic):
        query = TopKQuery(k=40)
        exact = exact_ptk_query(synthetic, query, 0.3)
        sampled = sampled_ptk_query(
            synthetic,
            query,
            0.3,
            SamplingConfig(sample_size=3000, progressive=False, seed=17),
        )
        precision, recall = precision_recall(exact.answers, sampled.answers)
        assert precision > 0.9
        assert recall > 0.9

    def test_estimates_close_for_answers(self, synthetic):
        query = TopKQuery(k=40)
        truth = exact_topk_probabilities(synthetic, query)
        sampled = sampled_ptk_query(
            synthetic,
            query,
            0.3,
            SamplingConfig(sample_size=5000, progressive=False, seed=17),
        )
        for tid in sampled.answers:
            assert sampled.probabilities[tid] == pytest.approx(
                truth[tid], abs=0.06
            )


class TestIcebergPipeline:
    def test_full_study_runs_and_is_consistent(self):
        table = generate_iceberg_table(
            IcebergConfig(n_tuples=500, n_rules=100, seed=3)
        )
        db = UncertainDB()
        db.register(table, name="ice")
        comparison = db.compare_semantics("ice", k=5, threshold=0.5)
        # every PT-k answer really passes the threshold
        for tid in comparison.ptk.answers:
            assert comparison.ptk.probabilities[tid] >= 0.5
        # U-TopK vector is a prefix-consistent selection: ranked order
        ranked_ids = [t.tid for t in TopKQuery(k=5).ranking.rank_table(table)]
        positions = [ranked_ids.index(tid) for tid in comparison.utopk.vector]
        assert positions == sorted(positions)

    def test_roundtrip_through_json_preserves_answers(self, tmp_path):
        table = generate_iceberg_table(
            IcebergConfig(n_tuples=300, n_rules=60, seed=4)
        )
        before = exact_ptk_query(table, TopKQuery(k=5), 0.5)
        path = tmp_path / "ice.json"
        write_table_json(table, path)
        restored = read_table_json(path)
        after = exact_ptk_query(restored, TopKQuery(k=5), 0.5)
        assert before.answer_set == after.answer_set


class TestPredicatesEndToEnd:
    def test_predicate_query_on_synthetic(self, synthetic):
        median = sorted(t.score for t in synthetic)[len(synthetic) // 2]
        query = TopKQuery(k=20, predicate=ScoreAbove(median))
        answer = exact_ptk_query(synthetic, query, 0.3)
        for tid in answer.answers:
            assert synthetic.get(tid).score > median

    def test_predicate_changes_probabilities(self, synthetic):
        # restricting the candidate pool can only help each tuple
        full = exact_topk_probabilities(synthetic, TopKQuery(k=20))
        median = sorted(t.score for t in synthetic)[len(synthetic) // 2]
        restricted = exact_topk_probabilities(
            synthetic, TopKQuery(k=20, predicate=ScoreAbove(median))
        )
        for tid, probability in restricted.items():
            assert probability >= full[tid] - 1e-9
