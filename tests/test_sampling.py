"""Tests for the Monte-Carlo sampling method (Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rule_compression import rule_index_of_table
from repro.core.sampling import (
    SamplingConfig,
    WorldSampler,
    sampled_ptk_query,
    sampled_topk_probabilities,
)
from repro.datagen.sensors import PANDA_TOP2_PROBABILITIES, panda_table
from repro.exceptions import QueryError, SamplingError
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from repro.stats.bounds import chernoff_hoeffding_sample_size
from repro.stats.intervals import wilson_interval
from tests.conftest import build_table, uncertain_tables


class TestConfig:
    def test_explicit_size(self):
        assert SamplingConfig(sample_size=123).resolved_sample_size() == 123

    def test_derived_size_matches_theorem6(self):
        config = SamplingConfig(epsilon=0.1, delta=0.05)
        assert config.resolved_sample_size() == chernoff_hoeffding_sample_size(
            0.1, 0.05
        )

    def test_rejects_nonpositive_size(self):
        with pytest.raises(SamplingError):
            SamplingConfig(sample_size=0).resolved_sample_size()


class TestWorldSampler:
    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            WorldSampler([], {}, k=0)

    def test_certain_tuple_always_included(self):
        table = build_table([1.0, 0.5], rule_groups=[])
        sampler = WorldSampler(table.ranked_tuples(), {}, k=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            top, _ = sampler.sample_unit(rng)
            assert "t0" in top

    def test_rule_yields_at_most_one_member(self):
        table = build_table([0.5, 0.45], rule_groups=[[0, 1]])
        rule_of = rule_index_of_table(table)
        sampler = WorldSampler(table.ranked_tuples(), rule_of, k=2)
        rng = np.random.default_rng(1)
        for _ in range(200):
            top, _ = sampler.sample_unit(rng)
            assert len(top) <= 1

    def test_rule_member_frequencies(self):
        table = build_table([0.6, 0.3], rule_groups=[[0, 1]])
        rule_of = rule_index_of_table(table)
        sampler = WorldSampler(table.ranked_tuples(), rule_of, k=2)
        rng = np.random.default_rng(2)
        counts = {"t0": 0, "t1": 0, None: 0}
        n = 20_000
        for _ in range(n):
            top, _ = sampler.sample_unit(rng)
            counts[top[0] if top else None] += 1
        assert counts["t0"] / n == pytest.approx(0.6, abs=0.02)
        assert counts["t1"] / n == pytest.approx(0.3, abs=0.02)
        assert counts[None] / n == pytest.approx(0.1, abs=0.02)

    def test_unit_has_at_most_k_tuples(self):
        table = build_table([0.9] * 10, rule_groups=[])
        sampler = WorldSampler(table.ranked_tuples(), {}, k=3)
        rng = np.random.default_rng(3)
        for _ in range(50):
            top, _ = sampler.sample_unit(rng)
            assert len(top) <= 3

    def test_top_k_in_ranking_order(self):
        table = build_table([0.9] * 6, rule_groups=[])
        ranked = table.ranked_tuples()
        positions = {t.tid: i for i, t in enumerate(ranked)}
        sampler = WorldSampler(ranked, {}, k=4)
        rng = np.random.default_rng(4)
        for _ in range(50):
            top, _ = sampler.sample_unit(rng)
            indices = [positions[t] for t in top]
            assert indices == sorted(indices)

    def test_lazy_scan_length_shorter_than_table(self):
        # high membership probabilities: the k-th inclusion comes early
        table = build_table([0.95] * 100, rule_groups=[])
        sampler = WorldSampler(table.ranked_tuples(), {}, k=5)
        rng = np.random.default_rng(5)
        lengths = [sampler.sample_unit(rng)[1] for _ in range(100)]
        assert max(lengths) < 100
        assert np.mean(lengths) < 15

    def test_nonlazy_scan_length_is_table_size(self):
        table = build_table([0.95] * 20, rule_groups=[])
        sampler = WorldSampler(table.ranked_tuples(), {}, k=5, lazy=False)
        rng = np.random.default_rng(6)
        _, scanned = sampler.sample_unit(rng)
        assert scanned == 20


class TestBatchedSampler:
    """The vectorised batch path against the per-unit reference path.

    The batch kernel consumes the RNG stream lazily (it never draws the
    coins the lazy scan would skip), so agreement with the per-unit path
    is statistical — same distribution, not the same coins: estimates
    must agree within Wilson bounds and scan-length statistics must
    match in expectation.
    """

    def _reference_counts(self, sampler, seed, n_units):
        """Accumulate counts/scan lengths unit by unit (the old loop)."""
        rng = np.random.default_rng(seed)
        counts = {}
        scanned = []
        for _ in range(n_units):
            top, length = sampler.sample_unit(rng)
            scanned.append(length)
            for tid in top:
                counts[tid] = counts.get(tid, 0) + 1
        return counts, scanned

    @pytest.mark.parametrize("batch_size", [7, 64, 500])
    def test_batch_agrees_with_per_unit_within_wilson_bounds(self, batch_size):
        table = panda_table()
        rule_of = rule_index_of_table(table)
        ranked = table.ranked_tuples()
        n_units = 4000
        sampler = WorldSampler(ranked, rule_of, k=2)
        ref_counts, ref_scanned = self._reference_counts(
            sampler, seed=11, n_units=n_units
        )
        rng = np.random.default_rng(11)
        counts = np.zeros(len(ranked), dtype=np.int64)
        scanned = []
        drawn = 0
        while drawn < n_units:
            step = min(batch_size, n_units - drawn)
            batch_counts, batch_scanned = sampler.sample_batch(rng, step)
            counts += batch_counts
            scanned.extend(batch_scanned.tolist())
            drawn += step
        ids = sampler.tuple_ids
        for i, tid in enumerate(ids):
            lo_b, hi_b = wilson_interval(int(counts[i]), n_units)
            lo_r, hi_r = wilson_interval(ref_counts.get(tid, 0), n_units)
            assert lo_b <= hi_r and lo_r <= hi_b, (
                f"{tid}: batched [{lo_b:.3f}, {hi_b:.3f}] disjoint from "
                f"per-unit [{lo_r:.3f}, {hi_r:.3f}]"
            )
        # Scan lengths have the same distribution; with 4000 units the
        # means must be close.
        assert np.mean(scanned) == pytest.approx(np.mean(ref_scanned), abs=0.2)
        assert max(scanned) <= len(ranked)
        assert min(scanned) >= 1

    @given(uncertain_tables(max_tuples=8), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_batch_estimates_match_truth_on_random_tables(self, table, k):
        rule_of = rule_index_of_table(table)
        ranked = table.ranked_tuples()
        sampler = WorldSampler(ranked, rule_of, k=k)
        n_units = 2000
        counts, scanned = sampler.sample_batch(
            np.random.default_rng(5), n_units
        )
        truth = naive_topk_probabilities(table, TopKQuery(k=k))
        ids = sampler.tuple_ids
        for i, tid in enumerate(ids):
            # 2000 units: additive error ~ 3 * sqrt(0.25/2000) ~ 0.034
            assert int(counts[i]) / n_units == pytest.approx(
                truth.get(tid, 0.0), abs=0.08
            )
        assert scanned.shape == (n_units,)
        assert np.all((scanned >= 1) & (scanned <= max(len(ranked), 1)))

    @pytest.mark.parametrize("batch_size", [1, 3, 50, 200, 1000])
    def test_estimates_consistent_across_batch_sizes(self, batch_size):
        config = SamplingConfig(
            sample_size=4000, progressive=False, seed=9, batch_size=batch_size
        )
        result = sampled_topk_probabilities(
            panda_table(), TopKQuery(k=2), config
        )
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert result.estimate_of(tid) == pytest.approx(expected, abs=0.05)
        # Deterministic for a fixed (seed, batch_size) pair.
        again = sampled_topk_probabilities(
            panda_table(), TopKQuery(k=2), config
        )
        assert again.estimates == result.estimates
        assert again.total_scanned == result.total_scanned

    def test_average_sample_length_matches_per_unit_reference(self):
        table = panda_table()
        sampler = WorldSampler(
            table.ranked_tuples(), rule_index_of_table(table), k=2
        )
        _, ref_scanned = self._reference_counts(sampler, seed=13, n_units=4000)
        result = sampled_topk_probabilities(
            table,
            TopKQuery(k=2),
            SamplingConfig(sample_size=4000, progressive=False, seed=17),
        )
        assert result.average_sample_length == pytest.approx(
            np.mean(ref_scanned), abs=0.2
        )

    @pytest.mark.parametrize("batch_size", [1, 30, 100, 999, 4096])
    def test_progressive_stops_only_at_checkpoint_boundaries(self, batch_size):
        result = sampled_topk_probabilities(
            panda_table(),
            TopKQuery(k=2),
            SamplingConfig(
                progressive=True,
                min_samples=200,
                check_interval=100,
                tolerance=0.05,
                seed=1,
                batch_size=batch_size,
            ),
        )
        assert result.converged_early
        assert result.units_drawn % 100 == 0
        assert result.units_drawn >= 200

    def test_progressive_estimates_sound_at_any_batch_size(self):
        # The draw schedule differs per batch size, so convergence may
        # fire at different checkpoints — but always *at* a checkpoint,
        # and always with estimates near the truth.
        for batch_size in (1, 37, 100, 5000):
            result = sampled_topk_probabilities(
                panda_table(),
                TopKQuery(k=2),
                SamplingConfig(
                    progressive=True,
                    min_samples=500,
                    check_interval=100,
                    tolerance=0.05,
                    seed=1,
                    batch_size=batch_size,
                ),
            )
            assert result.units_drawn % 100 == 0
            for tid, expected in PANDA_TOP2_PROBABILITIES.items():
                assert result.estimate_of(tid) == pytest.approx(
                    expected, abs=0.1
                )

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(SamplingError):
            SamplingConfig(batch_size=0).resolved_batch_size()
        with pytest.raises(SamplingError):
            sampled_topk_probabilities(
                panda_table(),
                TopKQuery(k=2),
                SamplingConfig(sample_size=10, batch_size=-5),
            )

    def test_default_batch_size_tracks_checkpoint_interval(self):
        assert (
            SamplingConfig(progressive=True, check_interval=250)
            .resolved_batch_size()
            == 250
        )
        assert SamplingConfig(progressive=False).resolved_batch_size() == 1024

    def test_sample_batch_rejects_nonpositive(self):
        table = build_table([0.5], rule_groups=[])
        sampler = WorldSampler(table.ranked_tuples(), {}, k=1)
        with pytest.raises(SamplingError):
            sampler.sample_batch(np.random.default_rng(0), 0)

    def test_empty_ranking(self):
        sampler = WorldSampler([], {}, k=1)
        counts, scanned = sampler.sample_batch(np.random.default_rng(0), 8)
        assert counts.size == 0
        assert scanned.tolist() == [0] * 8


class TestEstimates:
    def test_panda_estimates_converge(self):
        result = sampled_topk_probabilities(
            panda_table(),
            TopKQuery(k=2),
            SamplingConfig(sample_size=100_000, progressive=False, seed=7),
        )
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert result.estimate_of(tid) == pytest.approx(expected, abs=0.01)

    def test_deterministic_under_seed(self):
        config = SamplingConfig(sample_size=500, progressive=False, seed=42)
        a = sampled_topk_probabilities(panda_table(), TopKQuery(k=2), config)
        b = sampled_topk_probabilities(panda_table(), TopKQuery(k=2), config)
        assert a.estimates == b.estimates

    @given(uncertain_tables(max_tuples=8), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_estimates_within_monte_carlo_error(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_topk_probabilities(table, query)
        result = sampled_topk_probabilities(
            table,
            query,
            SamplingConfig(sample_size=20_000, progressive=False, seed=0),
        )
        for tid, expected in truth.items():
            # 20k samples: additive error ~ 3 * sqrt(0.25/20000) ~ 0.011
            assert result.estimate_of(tid) == pytest.approx(expected, abs=0.03)

    def test_progressive_stops_early(self):
        result = sampled_topk_probabilities(
            panda_table(),
            TopKQuery(k=2),
            SamplingConfig(
                progressive=True,
                min_samples=200,
                check_interval=100,
                tolerance=0.05,
                seed=1,
            ),
        )
        assert result.converged_early
        assert result.units_drawn < result.budget

    def test_budget_respected_without_convergence(self):
        result = sampled_topk_probabilities(
            panda_table(),
            TopKQuery(k=2),
            SamplingConfig(sample_size=300, progressive=False, seed=1),
        )
        assert result.units_drawn == 300
        assert not result.converged_early


class TestSampledQuery:
    def test_rejects_bad_threshold(self):
        with pytest.raises(QueryError):
            sampled_ptk_query(panda_table(), TopKQuery(k=2), 0.0)

    def test_answer_matches_exact_on_panda(self):
        answer = sampled_ptk_query(
            panda_table(),
            TopKQuery(k=2),
            0.35,
            SamplingConfig(sample_size=50_000, progressive=False, seed=3),
        )
        assert answer.answer_set == {"R2", "R3", "R5"}
        assert answer.method == "sampling"

    def test_answers_in_ranking_order(self):
        answer = sampled_ptk_query(
            panda_table(),
            TopKQuery(k=2),
            0.35,
            SamplingConfig(sample_size=50_000, progressive=False, seed=3),
        )
        assert answer.answers == ["R2", "R5", "R3"]

    def test_stats_populated(self):
        answer = sampled_ptk_query(
            panda_table(),
            TopKQuery(k=2),
            0.35,
            SamplingConfig(sample_size=1000, progressive=False, seed=3),
        )
        assert answer.stats.sample_units == 1000
        assert answer.stats.avg_sample_length > 0


class TestForDeadline:
    def test_budget_scales_with_time(self):
        tight = SamplingConfig.for_deadline(
            0.2, unit_length=100, seconds_per_unit=1e-3
        )
        loose = SamplingConfig.for_deadline(
            1.0, unit_length=100, seconds_per_unit=1e-3
        )
        # Both affordable budgets sit under the Theorem-6 cap (1107 at
        # the default epsilon/delta), so time translates to units 1:1.
        assert tight.sample_size == 200
        assert loose.sample_size == 1000
        assert loose.progressive

    def test_floor_when_deadline_nearly_exhausted(self):
        config = SamplingConfig.for_deadline(
            1e-6, unit_length=100, seconds_per_unit=1e-3, min_units=100
        )
        assert config.sample_size == 100

    def test_capped_at_chernoff_budget_by_default(self):
        from repro.stats.bounds import chernoff_hoeffding_sample_size

        config = SamplingConfig.for_deadline(
            1e9, unit_length=100, seconds_per_unit=1e-9
        )
        cap = chernoff_hoeffding_sample_size(
            SamplingConfig.epsilon, SamplingConfig.delta
        )
        assert config.sample_size == cap

    def test_explicit_cap_respected(self):
        config = SamplingConfig.for_deadline(
            100.0, unit_length=100, seconds_per_unit=1e-3, max_units=2000
        )
        assert config.sample_size == 2000

    def test_invalid_unit_cost_rejected(self):
        from repro.exceptions import SamplingError

        with pytest.raises(SamplingError):
            SamplingConfig.for_deadline(
                1.0, unit_length=100, seconds_per_unit=0.0
            )

    def test_config_runs_end_to_end(self):
        config = SamplingConfig.for_deadline(
            0.5, unit_length=3, seconds_per_unit=1e-4, seed=7
        )
        answer = sampled_ptk_query(
            panda_table(), TopKQuery(k=2), 0.35, config
        )
        assert answer.answer_set  # a usable, non-empty estimate
