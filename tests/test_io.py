"""Tests for CSV and JSON persistence."""

import pytest

from repro.datagen.sensors import panda_table
from repro.exceptions import ValidationError
from repro.io.csvio import read_table_csv, write_table_csv
from repro.io.jsonio import (
    read_table_json,
    table_from_dict,
    table_to_dict,
    write_table_json,
)
from repro.model.table import UncertainTable
from tests.conftest import build_table


def tables_equal(a: UncertainTable, b: UncertainTable, ids_as_str=False):
    key = (lambda t: str(t)) if ids_as_str else (lambda t: t)
    a_tuples = {key(t.tid): (t.score, t.probability) for t in a}
    b_tuples = {key(t.tid): (t.score, t.probability) for t in b}
    assert a_tuples == b_tuples
    a_rules = {
        str(r.rule_id): sorted(key(t) for t in r.tuple_ids)
        for r in a.multi_rules()
    }
    b_rules = {
        str(r.rule_id): sorted(key(t) for t in r.tuple_ids)
        for r in b.multi_rules()
    }
    assert a_rules == b_rules


class TestJson:
    def test_roundtrip_panda(self, tmp_path):
        table = panda_table()
        path = tmp_path / "panda.json"
        write_table_json(table, path)
        restored = read_table_json(path)
        tables_equal(table, restored)
        assert restored.get("R1").attributes["location"] == "A"

    def test_roundtrip_no_rules(self, tmp_path):
        table = build_table([0.5, 0.4], rule_groups=[])
        path = tmp_path / "t.json"
        write_table_json(table, path)
        tables_equal(table, read_table_json(path))

    def test_dict_roundtrip_preserves_name(self):
        table = panda_table()
        doc = table_to_dict(table)
        assert doc["name"] == "panda_sightings"
        restored = table_from_dict(doc)
        assert restored.name == "panda_sightings"

    def test_missing_key_raises(self):
        with pytest.raises(ValidationError):
            table_from_dict({"name": "broken"})

    def test_bad_rule_in_document_raises(self):
        doc = {
            "name": "t",
            "tuples": [
                {"tid": "a", "score": 1, "probability": 0.9},
                {"tid": "b", "score": 2, "probability": 0.9},
            ],
            "rules": [{"rule_id": "r", "members": ["a", "b"]}],
        }
        with pytest.raises(ValidationError):
            table_from_dict(doc)  # 1.8 > 1


class TestCsv:
    def test_roundtrip_panda(self, tmp_path):
        table = panda_table()
        stem = tmp_path / "panda"
        write_table_csv(table, stem)
        restored = read_table_csv(stem)
        tables_equal(table, restored, ids_as_str=True)

    def test_attributes_roundtrip_as_strings(self, tmp_path):
        table = panda_table()
        stem = tmp_path / "panda"
        write_table_csv(table, stem)
        restored = read_table_csv(stem)
        assert restored.get("R1").attributes["location"] == "A"

    def test_missing_rules_file_gives_independent_table(self, tmp_path):
        table = build_table([0.5, 0.4], rule_groups=[])
        stem = tmp_path / "t"
        write_table_csv(table, stem)
        (tmp_path / "t.rules.csv").unlink()
        restored = read_table_csv(stem)
        assert restored.multi_rules() == []
        assert len(restored) == 2

    def test_heterogeneous_attributes(self, tmp_path):
        table = UncertainTable()
        table.add("a", 1, 0.5, color="red")
        table.add("b", 2, 0.5, size="large")
        stem = tmp_path / "h"
        write_table_csv(table, stem)
        restored = read_table_csv(stem)
        assert restored.get("a").attributes == {"color": "red"}
        assert restored.get("b").attributes == {"size": "large"}

    def test_reserved_attribute_name_rejected(self, tmp_path):
        from repro.model.tuples import UncertainTuple

        table = UncertainTable()
        table.add_tuple(
            UncertainTuple(
                tid="a", score=1, probability=0.5, attributes={"score": "x"}
            )
        )
        with pytest.raises(ValidationError):
            write_table_csv(table, tmp_path / "bad")

    def test_multi_member_rules_and_scores_roundtrip_exactly(self, tmp_path):
        # Golden round trip for the awkward cases: a three-member
        # exclusion rule, a two-member rule, irrational scores, and
        # probabilities with no short decimal form.  Everything the
        # PT-k computation consumes must survive byte-exactly.
        table = UncertainTable(name="golden")
        scores = [97.25, 3.141592653589793, 88.0, 2 / 3, 41.5, 17.125]
        probabilities = [0.3, 0.25, 1 / 3, 0.4, 0.2, 0.123456789012345]
        for i, (score, probability) in enumerate(zip(scores, probabilities)):
            table.add(f"g{i}", score, probability)
        table.add_exclusive("triple", "g0", "g1", "g2")
        table.add_exclusive("pair", "g3", "g4")
        stem = tmp_path / "golden"
        write_table_csv(table, stem)
        restored = read_table_csv(stem)

        assert [t.tid for t in restored] == [t.tid for t in table]
        for tup in table:
            mine = restored.get(tup.tid)
            assert mine.score == tup.score
            assert mine.probability == tup.probability
        assert {
            str(r.rule_id): sorted(map(str, r.tuple_ids))
            for r in restored.multi_rules()
        } == {
            "triple": ["g0", "g1", "g2"],
            "pair": ["g3", "g4"],
        }
        restored.validate()

    def test_probabilities_roundtrip_exactly(self, tmp_path):
        # repr() round-trips doubles exactly
        table = build_table([0.1234567890123456, 1 / 3], rule_groups=[])
        stem = tmp_path / "p"
        write_table_csv(table, stem)
        restored = read_table_csv(stem)
        for tup in table:
            assert restored.get(tup.tid).probability == tup.probability


class TestJsonValidation:
    """Corrupt documents fail loudly, naming the offending id."""

    def _doc(self, **overrides):
        doc = {
            "name": "t",
            "tuples": [
                {"tid": "a", "score": 2, "probability": 0.5},
                {"tid": "b", "score": 1, "probability": 0.4},
            ],
            "rules": [],
        }
        doc.update(overrides)
        return doc

    def test_duplicate_tuple_id_rejected_naming_id(self):
        doc = self._doc(
            tuples=[
                {"tid": "a", "score": 2, "probability": 0.5},
                {"tid": "dup", "score": 1, "probability": 0.4},
                {"tid": "dup", "score": 0, "probability": 0.3},
            ]
        )
        with pytest.raises(ValidationError, match="'dup'"):
            table_from_dict(doc)

    def test_rule_member_referencing_unknown_tid_rejected(self):
        doc = self._doc(
            rules=[{"rule_id": "r1", "members": ["a", "ghost"]}]
        )
        with pytest.raises(ValidationError, match="'ghost'") as excinfo:
            table_from_dict(doc)
        assert "r1" in str(excinfo.value)

    def test_valid_document_still_loads(self):
        doc = self._doc(rules=[{"rule_id": "r1", "members": ["a", "b"]}])
        table = table_from_dict(doc)
        assert len(table) == 2
        assert len(table.multi_rules()) == 1


class TestJsonTupleIds:
    """Non-JSON-native tids: tuples round-trip via arrays."""

    def test_tuple_tids_roundtrip(self, tmp_path):
        table = UncertainTable(name="composite")
        table.add(("sensor", 1), score=3.0, probability=0.5)
        table.add(("sensor", 2), score=2.0, probability=0.4)
        table.add(("radar", 1), score=1.0, probability=0.5)
        table.add_exclusive("r0", ("sensor", 1), ("sensor", 2))
        path = tmp_path / "composite.json"
        write_table_json(table, path)
        restored = read_table_json(path)
        assert {t.tid for t in restored} == {
            ("sensor", 1), ("sensor", 2), ("radar", 1),
        }
        rule = restored.multi_rules()[0]
        assert sorted(rule.tuple_ids) == [("sensor", 1), ("sensor", 2)]
        tables_equal(table, restored)

    def test_nested_tuple_tids_roundtrip(self, tmp_path):
        table = UncertainTable(name="nested")
        table.add((("a", 1), "x"), score=2.0, probability=0.7)
        table.add("plain", score=1.0, probability=0.5)
        path = tmp_path / "nested.json"
        write_table_json(table, path)
        restored = read_table_json(path)
        assert {t.tid for t in restored} == {(("a", 1), "x"), "plain"}

    def test_duplicate_after_tuple_revival_rejected(self):
        # Two distinct JSON arrays decoding to the same tuple collide.
        doc = {
            "name": "t",
            "tuples": [
                {"tid": ["s", 1], "score": 2, "probability": 0.5},
                {"tid": ["s", 1], "score": 1, "probability": 0.4},
            ],
            "rules": [],
        }
        with pytest.raises(ValidationError, match="duplicate"):
            table_from_dict(doc)
