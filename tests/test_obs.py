"""Tests for the observability layer: metrics, tracing, exports, gating."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro import obs
from repro.datagen.sensors import panda_table
from repro.exceptions import ObservabilityError, UnknownTableError, UnknownTupleError
from repro.obs import catalog
from repro.obs import export as obs_export
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.tracing import NOOP_SPAN, Tracer
from repro.query.engine import UncertainDB


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _query_db():
    db = UncertainDB()
    db.register(panda_table())
    return db


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("c", labelnames=("theorem",))
        counter.inc(2, theorem="membership")
        counter.inc(5, theorem="same-rule")
        assert counter.value(theorem="membership") == 2
        assert counter.value(theorem="same-rule") == 5

    def test_label_mismatch_rejected(self):
        counter = Counter("c", labelnames=("theorem",))
        with pytest.raises(ObservabilityError):
            counter.inc(1)
        with pytest.raises(ObservabilityError):
            counter.inc(1, wrong="x")

    def test_thread_safety(self):
        counter = Counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogram:
    def test_bucket_assignment_and_sum(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            hist.observe(value)
        [sample] = hist.samples()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(555.5)
        # Cumulative buckets: <=1, <=10, <=100, +Inf.
        assert sample["buckets"]["1.0"] == 1
        assert sample["buckets"]["10.0"] == 2
        assert sample["buckets"]["100.0"] == 3
        assert sample["buckets"]["+Inf"] == 4

    def test_rejects_bad_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=())
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(5, 5))

    def test_count_and_sum_accessors(self):
        hist = Histogram("h", buckets=(1, 2))
        assert hist.count() == 0
        hist.observe(1.5)
        assert hist.count() == 1
        assert hist.sum() == pytest.approx(1.5)


class TestTimer:
    def test_time_context_records(self):
        timer = Timer("t")
        with timer.time():
            pass
        assert timer.count() == 1
        assert timer.total_seconds() >= 0
        [sample] = timer.samples()
        assert sample["max"] >= 0

    def test_labelled_timer(self):
        timer = Timer("t", labelnames=("semantics",))
        timer.observe(0.25, semantics="ptk")
        timer.observe(0.75, semantics="ptk")
        assert timer.count(semantics="ptk") == 2
        assert timer.total_seconds(semantics="ptk") == pytest.approx(1.0)

    def test_rejects_invalid_durations(self):
        timer = Timer("t")
        with pytest.raises(ObservabilityError):
            timer.observe(-1)
        with pytest.raises(ObservabilityError):
            timer.observe(math.nan)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c", help="x")
        second = registry.counter("c")
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ObservabilityError):
            registry.gauge("m")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labelnames=("a",))
        with pytest.raises(ObservabilityError):
            registry.counter("m", labelnames=("b",))

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("m").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.get("m") is None


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_nesting_and_trace_id_propagation(self):
        tracer = Tracer()
        with tracer.span("query.ptk") as root:
            root_trace = tracer.current_trace_id()
            with tracer.span("ptk.prepare"):
                assert tracer.current_trace_id() == root_trace
            with tracer.span("ptk.scan") as scan:
                scan.set(scan_depth=4)
        assert root.trace_id == root_trace
        assert [child.name for child in root.children] == [
            "ptk.prepare",
            "ptk.scan",
        ]
        assert all(child.trace_id == root.trace_id for child in root.children)
        assert root.find("ptk.scan").attributes["scan_depth"] == 4
        assert root.duration >= sum(c.duration for c in root.children) - 1e-9

    def test_finished_ring_keeps_roots_only(self):
        tracer = Tracer(max_traces=2)
        for i in range(3):
            with tracer.span(f"root{i}"):
                with tracer.span("child"):
                    pass
        names = [span.name for span in tracer.traces()]
        assert names == ["root1", "root2"]
        assert tracer.last_trace().name == "root2"

    def test_threads_get_separate_stacks(self):
        tracer = Tracer()
        seen = {}

        def work(tag):
            with tracer.span(f"root.{tag}"):
                seen[tag] = tracer.current_trace_id()

        threads = [
            threading.Thread(target=work, args=(tag,)) for tag in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen["a"] != seen["b"]

    def test_exception_annotates_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        [root] = tracer.traces()
        assert "error" in root.attributes

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything") is NOOP_SPAN
        with obs.span("anything") as s:
            s.set(ignored=1)
        assert obs.OBS.tracer.traces() == []


# ----------------------------------------------------------------------
# Disabled-mode behaviour
# ----------------------------------------------------------------------
class TestDisabledMode:
    def test_query_answers_identical_and_registry_empty(self):
        db = _query_db()
        baseline = db.ptk("panda_sightings", k=2, threshold=0.35)
        assert len(obs.OBS.registry) == 0
        assert obs.OBS.tracer.traces() == []

        with obs.enabled_scope(fresh=True):
            instrumented = db.ptk("panda_sightings", k=2, threshold=0.35)

        assert instrumented.answers == baseline.answers
        assert instrumented.probabilities == baseline.probabilities
        assert instrumented.stats.scan_depth == baseline.stats.scan_depth
        assert (
            instrumented.stats.subset_extensions
            == baseline.stats.subset_extensions
        )

        # And back off again: no further registry growth.
        size_after = len(obs.OBS.registry)
        db.ptk("panda_sightings", k=2, threshold=0.35)
        assert len(obs.OBS.registry) == size_after

    def test_enabled_scope_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.enabled_scope():
            assert obs.is_enabled()
        assert not obs.is_enabled()


# ----------------------------------------------------------------------
# End-to-end: one query populates the snapshot the issue demands
# ----------------------------------------------------------------------
class TestQuerySnapshot:
    REQUIRED = [
        "repro_ptk_scan_depth",
        "repro_ptk_tuples_pruned_total",
        "repro_compression_units_total",
        "repro_reorder_prefix_hits_total",
        "repro_query_seconds",
    ]

    def test_single_ptk_query_snapshot(self):
        db = _query_db()
        with obs.enabled_scope(fresh=True):
            db.ptk("panda_sightings", k=2, threshold=0.35)
        snapshot = obs_export.snapshot()
        for name in self.REQUIRED:
            assert name in snapshot["metrics"], name
        pruned = snapshot["metrics"]["repro_ptk_tuples_pruned_total"]
        theorems = {s["labels"]["theorem"] for s in pruned["samples"]}
        assert theorems == {"membership", "same-rule"}
        # Per-phase span tree rooted at the query.
        [trace] = snapshot["traces"]
        assert trace["name"] == "query.ptk"
        child_names = [c["name"] for c in trace["children"]]
        assert "ptk.scan" in child_names
        assert all(
            c["trace_id"] == trace["trace_id"] for c in trace["children"]
        )
        assert catalog.validate_snapshot(snapshot) == []

    def test_sampler_metrics(self):
        from repro.core.sampling import SamplingConfig, sampled_ptk_query
        from repro.query.topk import TopKQuery

        with obs.enabled_scope(fresh=True):
            sampled_ptk_query(
                panda_table(),
                TopKQuery(k=2),
                0.35,
                config=SamplingConfig(sample_size=64, seed=3),
            )
        snapshot = obs_export.snapshot()
        metrics = snapshot["metrics"]
        assert (
            metrics["repro_sampler_units_total"]["samples"][0]["value"] == 64
        )
        assert metrics["repro_sampler_budget_units"]["samples"][0]["value"] == 64
        assert "repro_sampler_unit_scan_length" in metrics
        assert catalog.validate_snapshot(snapshot) == []

    def test_catalog_validation_flags_impostors(self):
        snapshot = {
            "metrics": {
                "made_up_metric": {"type": "counter", "labelnames": []},
                "repro_ptk_scan_depth": {"type": "gauge", "labelnames": []},
                "repro_ptk_tuples_pruned_total": {
                    "type": "counter",
                    "labelnames": ["wrong"],
                },
            }
        }
        problems = catalog.validate_snapshot(snapshot)
        assert len(problems) == 3


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExport:
    def _populate(self):
        db = _query_db()
        with obs.enabled_scope(fresh=True):
            db.ptk("panda_sightings", k=2, threshold=0.35)

    def test_json_round_trip(self, tmp_path):
        self._populate()
        path = obs_export.write_json(tmp_path / "metrics.json")
        parsed = json.loads(path.read_text())
        assert parsed == obs_export.snapshot()
        assert parsed["version"] == obs_export.SNAPSHOT_VERSION
        assert catalog.validate_snapshot(parsed) == []

    def test_prometheus_round_trip(self):
        self._populate()
        text = obs_export.to_prometheus()
        samples = obs_export.parse_prometheus(text)
        snapshot = obs_export.snapshot()["metrics"]
        scanned = snapshot["repro_ptk_tuples_scanned_total"]["samples"][0]
        assert samples[("repro_ptk_tuples_scanned_total", ())] == scanned["value"]
        hist = snapshot["repro_ptk_scan_depth"]["samples"][0]
        assert (
            samples[("repro_ptk_scan_depth_count", ())] == hist["count"]
        )
        assert samples[
            ("repro_ptk_scan_depth_bucket", (("le", "+Inf"),))
        ] == hist["count"]
        pruned = samples[
            (
                "repro_ptk_tuples_pruned_total",
                (("theorem", "membership"),),
            )
        ]
        assert pruned >= 0

    def test_render_text_mentions_trace(self):
        self._populate()
        text = obs_export.render_text()
        assert "repro_ptk_scan_depth" in text
        assert "query.ptk" in text
        assert "ptk.scan" in text


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def table_path(self, tmp_path):
        from repro.io.jsonio import write_table_json

        path = tmp_path / "panda.json"
        write_table_json(panda_table(), path)
        return path

    def test_query_emit_metrics(self, table_path, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        code = main(
            [
                "query",
                str(table_path),
                "-k",
                "2",
                "-p",
                "0.35",
                "--emit-metrics",
                str(out),
            ]
        )
        assert code == 0
        parsed = json.loads(out.read_text())
        assert catalog.validate_snapshot(parsed) == []
        assert "repro_ptk_scan_depth" in parsed["metrics"]

    def test_stats_subcommand_json(self, table_path, capsys):
        from repro.cli import main

        code = main(
            ["stats", str(table_path), "-k", "2", "-p", "0.35", "--format", "json"]
        )
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert catalog.validate_snapshot(parsed) == []
        assert parsed["traces"], "stats must include the span tree"

    def test_stats_subcommand_prometheus(self, table_path, capsys):
        from repro.cli import main

        code = main(
            ["stats", str(table_path), "-k", "2", "-p", "0.35", "--format", "prom"]
        )
        assert code == 0
        samples = obs_export.parse_prometheus(capsys.readouterr().out)
        assert ("repro_ptk_tuples_scanned_total", ()) in samples


# ----------------------------------------------------------------------
# Satellite: UnknownTableError
# ----------------------------------------------------------------------
class TestUnknownTableError:
    def test_table_raises_specific_error(self):
        db = UncertainDB()
        with pytest.raises(UnknownTableError):
            db.table("nope")
        with pytest.raises(UnknownTableError):
            db.drop("nope")

    def test_still_catchable_as_unknown_tuple_error(self):
        db = UncertainDB()
        with pytest.raises(UnknownTupleError):
            db.table("nope")


# ----------------------------------------------------------------------
# Satellite: derived quantiles in the JSON export
# ----------------------------------------------------------------------
class TestDerivedQuantiles:
    """Pin the bucket-interpolation math against hand-computed samples."""

    def test_histogram_quantiles_interpolate_within_buckets(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        # Per-bucket counts: [1, 1, 2, 0 in +Inf]; total 4.
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        [sample] = hist.samples()
        quantiles = sample["quantiles"]
        # rank(p50) = 2 lands exactly on the (1, 2] bucket's upper edge.
        assert quantiles["p50"] == pytest.approx(2.0)
        # rank(p95) = 3.8: 2 observations precede the (2, 4] bucket,
        # interpolate 0.9 of the way through its 2 observations.
        assert quantiles["p95"] == pytest.approx(2.0 + 2.0 * 0.9)
        assert quantiles["p99"] == pytest.approx(2.0 + 2.0 * 0.98)

    def test_histogram_quantiles_clamp_to_last_finite_bound(self):
        hist = Histogram("h", buckets=(1, 10))
        hist.observe(500)  # lands in +Inf
        [sample] = hist.samples()
        assert sample["quantiles"]["p50"] == pytest.approx(10.0)
        assert sample["quantiles"]["p99"] == pytest.approx(10.0)

    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram("h", buckets=(1, 2))
        assert hist.samples() == []

    def test_timer_samples_carry_quantiles(self):
        timer = Timer("t")
        for _ in range(10):
            timer.observe(0.002)  # within the (0.001, 0.0025] bucket
        [sample] = timer.samples()
        quantiles = sample["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        # All mass in one bucket: every quantile inside it.
        assert 0.001 < quantiles["p50"] <= 0.0025
        assert 0.001 < quantiles["p99"] <= 0.0025
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        # Timers derive from the shared latency buckets without
        # exposing raw bucket counts in their samples.
        assert "buckets" not in sample

    def test_quantiles_survive_the_json_round_trip(self, tmp_path):
        db = _query_db()
        with obs.enabled_scope(fresh=True):
            db.ptk("panda_sightings", k=2, threshold=0.35)
        path = obs_export.write_json(tmp_path / "metrics.json")
        parsed = json.loads(path.read_text())
        [sample] = parsed["metrics"]["repro_query_seconds"]["samples"]
        assert sample["quantiles"]["p50"] > 0.0


# ----------------------------------------------------------------------
# Satellite: Prometheus label escaping + catalogue rejection
# ----------------------------------------------------------------------
class TestPrometheusLabelEscaping:
    def _export_with_label(self, value: str) -> str:
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("v",)).inc(1, v=value)
        return obs_export.to_prometheus(registry)

    def test_double_quotes_escaped(self):
        text = self._export_with_label('say "hi"')
        assert r'v="say \"hi\""' in text

    def test_backslashes_escaped(self):
        text = self._export_with_label("dir\\file")
        assert r'v="dir\\file"' in text

    def test_newlines_escaped(self):
        text = self._export_with_label("line1\nline2")
        assert r'v="line1\nline2"' in text
        # The exposition stays line-framed: no raw newline inside a label.
        for line in text.splitlines():
            if line.startswith("c_total{"):
                assert line.endswith(" 1")

    def test_all_three_together(self):
        text = self._export_with_label('a"b\nc\\d')
        assert r'v="a\"b\nc\\d"' in text


class TestCatalogueRejection:
    def test_uncatalogued_metric_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_flight_bogus_total").inc()
        snapshot = obs_export.snapshot(registry=registry, tracer=Tracer())
        problems = catalog.validate_snapshot(snapshot)
        assert any("repro_flight_bogus_total" in p for p in problems)

    def test_spec_of_unknown_name_raises(self):
        with pytest.raises(KeyError):
            catalog.spec_of("repro_not_in_catalogue_total")
