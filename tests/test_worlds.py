"""Tests for possible-world enumeration and Equation 1."""

import math

import pytest
from hypothesis import given, settings

from repro.exceptions import EnumerationLimitError
from repro.datagen.sensors import panda_table
from repro.model.table import UncertainTable
from repro.model.worlds import (
    count_possible_worlds,
    enumerate_possible_worlds,
    total_probability,
    world_probability,
)
from tests.conftest import build_table, uncertain_tables


class TestCounting:
    def test_independent_tuples(self):
        # every tuple doubles the world count
        table = build_table([0.5, 0.5, 0.5], rule_groups=[])
        assert count_possible_worlds(table) == 8

    def test_certain_tuple_does_not_branch(self):
        table = build_table([1.0, 0.5], rule_groups=[])
        assert count_possible_worlds(table) == 2

    def test_open_rule_counts_members_plus_one(self):
        table = build_table([0.3, 0.3], rule_groups=[[0, 1]])
        assert count_possible_worlds(table) == 3

    def test_certain_rule_counts_members(self):
        table = build_table([0.5, 0.5], rule_groups=[[0, 1]])
        assert count_possible_worlds(table) == 2

    def test_panda_example_has_twelve_worlds(self):
        # Table 2 of the paper lists exactly 12 possible worlds.
        assert count_possible_worlds(panda_table()) == 12


class TestEnumeration:
    def test_probabilities_sum_to_one(self):
        table = build_table([0.5, 0.25, 0.8], rule_groups=[])
        worlds = list(enumerate_possible_worlds(table))
        assert total_probability(worlds) == pytest.approx(1.0)

    def test_panda_world_probabilities_match_table2(self):
        # Spot-check the paper's Table 2 values.
        table = panda_table()
        worlds = {
            frozenset(w.tuple_ids): w.probability
            for w in enumerate_possible_worlds(table)
        }
        assert worlds[frozenset({"R1", "R2", "R4", "R5"})] == pytest.approx(0.096)
        assert worlds[frozenset({"R3", "R4", "R5"})] == pytest.approx(0.28)
        assert worlds[frozenset({"R4", "R6"})] == pytest.approx(0.014)
        assert len(worlds) == 12

    def test_rule_never_contributes_two_tuples(self):
        table = build_table([0.3, 0.4, 0.2], rule_groups=[[0, 1]])
        for world in enumerate_possible_worlds(table):
            assert len({"t0", "t1"} & set(world.tuple_ids)) <= 1

    def test_certain_rule_always_contributes_one(self):
        table = build_table([0.5, 0.5], rule_groups=[[0, 1]])
        for world in enumerate_possible_worlds(table):
            assert len(world) == 1

    def test_limit_enforced(self):
        table = build_table([0.5] * 10, rule_groups=[])
        with pytest.raises(EnumerationLimitError):
            list(enumerate_possible_worlds(table, limit=100))

    def test_empty_table_has_one_empty_world(self):
        table = UncertainTable()
        worlds = list(enumerate_possible_worlds(table))
        assert len(worlds) == 1
        assert len(worlds[0]) == 0
        assert worlds[0].probability == pytest.approx(1.0)

    @given(uncertain_tables(max_tuples=8))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_is_a_distribution(self, table):
        worlds = list(enumerate_possible_worlds(table))
        assert total_probability(worlds) == pytest.approx(1.0, abs=1e-9)
        assert all(w.probability > 0 for w in worlds)

    @given(uncertain_tables(max_tuples=7))
    @settings(max_examples=25, deadline=None)
    def test_marginals_match_membership_probabilities(self, table):
        worlds = list(enumerate_possible_worlds(table))
        for tup in table:
            marginal = math.fsum(
                w.probability for w in worlds if tup.tid in w.tuple_ids
            )
            assert marginal == pytest.approx(tup.probability, abs=1e-9)


class TestWorldProbability:
    def test_matches_enumeration(self):
        table = build_table([0.5, 0.3, 0.4], rule_groups=[[1, 2]])
        for world in enumerate_possible_worlds(table):
            assert world_probability(table, list(world.tuple_ids)) == pytest.approx(
                world.probability
            )

    def test_illegal_pair_from_rule_is_zero(self):
        table = build_table([0.5, 0.3, 0.4], rule_groups=[[1, 2]])
        assert world_probability(table, ["t1", "t2"]) == 0.0

    def test_missing_certain_rule_member_is_zero(self):
        table = build_table([1.0, 0.5], rule_groups=[])
        assert world_probability(table, ["t1"]) == 0.0

    def test_unknown_tuple_raises(self):
        table = build_table([0.5], rule_groups=[])
        with pytest.raises(Exception):
            world_probability(table, ["ghost"])
