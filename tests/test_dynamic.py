"""The incremental PT-k index (:mod:`repro.dynamic`).

The load-bearing contract is *byte* equality: every incremental answer
must be bit-for-bit identical to a cold recompute of the current table
— same ``Pr^k`` doubles, same answer set, same order.  These tests pin
that contract per mutation kind, across suffix restarts, through the
registry's fallback policy, and end to end through the serve layer.
"""

import json
import random

import numpy as np
import pytest

from repro.core.exact import exact_ptk_query
from repro.core.kernel import TableColumns, columnar_topk_scan
from repro.core.rule_compression import rule_index_of_table
from repro.dynamic import (
    DynamicIndex,
    DynamicIndexRegistry,
    TableDelta,
    delta_from_record,
    refresh_prepared,
)
from repro.exceptions import ReproError, UnsupportedDeltaError
from repro.model.table import UncertainTable
from repro.query.engine import UncertainDB
from repro.query.prepare import prepare_ranking
from repro.query.topk import TopKQuery


def cold_probabilities(table, k):
    """The cold columnar scan's (tids, Pr^k) for the current table."""
    ranked = table.ranked_tuples()
    columns = TableColumns.from_ranked(ranked, rule_index_of_table(table))
    out, _ = columnar_topk_scan(columns.probability, columns.rule_index, k)
    return columns.tids, out


class MutationDriver:
    """Random mutation generator that keeps table and deltas in sync."""

    def __init__(self, table, seed=0, name="t"):
        self.table = table
        self.name = name
        self.rng = random.Random(seed)
        self.next_tid = 0
        self.next_rule = 0

    def seed_tuples(self, n):
        deltas = []
        for _ in range(n):
            delta = self.emit("add")
            if delta is not None:
                deltas.append(delta)
        return deltas

    def emit(self, op):
        rng, table = self.rng, self.table
        prev = table.version
        try:
            if op == "add":
                tid = f"t{self.next_tid}"
                self.next_tid += 1
                score = rng.choice(
                    [rng.uniform(0, 100), float(rng.randint(0, 20))]
                )
                p = rng.uniform(0.05, 1.0)
                table.add(tid, score, p)
                return TableDelta(self.name, "add", prev, table.version,
                                  tid=tid, score=score, probability=p)
            if op == "remove":
                tid = rng.choice(table.tuple_ids())
                table.remove_tuple(tid)
                return TableDelta(self.name, "remove", prev, table.version,
                                  tid=tid)
            if op == "update":
                tid = rng.choice(table.tuple_ids())
                p = rng.uniform(0.05, 1.0)
                table.update_probability(tid, p)
                return TableDelta(self.name, "update", prev, table.version,
                                  tid=tid, probability=p)
            if op == "score":
                tid = rng.choice(table.tuple_ids())
                score = rng.choice(
                    [rng.uniform(0, 100), float(rng.randint(0, 20))]
                )
                table.update_score(tid, score)
                return TableDelta(self.name, "score", prev, table.version,
                                  tid=tid, score=score)
            free = [t for t in table.tuple_ids() if table.is_independent(t)]
            if len(free) < 2:
                return None
            members = rng.sample(free, rng.randint(2, min(4, len(free))))
            rid = f"r{self.next_rule}"
            self.next_rule += 1
            table.add_exclusive(rid, *members)
            return TableDelta(self.name, "rule", prev, table.version,
                              rule_id=rid, members=tuple(members))
        except ReproError:
            return None  # table rejected it (rule sum > 1, ...) — no delta

    def random_op(self):
        ops = (["add"] * 4 + ["remove"] * 2 + ["update"] * 4
               + ["score"] * 3 + ["rule"] * 2)
        if len(self.table) < 3:
            return self.emit("add")
        return self.emit(self.rng.choice(ops))


class TestByteEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_every_mutation_kind_stays_bitwise_cold(self, seed, k):
        table = UncertainTable(name="t")
        driver = MutationDriver(table, seed=seed)
        driver.seed_tuples(25)
        index = DynamicIndex.build("t", table, cap=k)
        for step in range(80):
            delta = driver.random_op()
            if delta is None:
                continue
            try:
                index.apply(delta)
            except UnsupportedDeltaError:
                index = DynamicIndex.build("t", table, cap=k)
            tids, out = cold_probabilities(table, k)
            assert tuple(index.tids) == tids, f"order differs at step {step}"
            dyn = index.topk_probabilities(k)
            assert np.array_equal(out, dyn), (
                f"step {step}: {np.flatnonzero(out != dyn)[:5]}"
            )

    def test_crossing_checkpoint_blocks(self):
        # n > BLOCK exercises checkpoint truncation and mid-run restarts
        from repro.dynamic.index import BLOCK

        table = UncertainTable(name="t")
        driver = MutationDriver(table, seed=42)
        driver.seed_tuples(BLOCK + 40)
        index = DynamicIndex.build("t", table, cap=3)
        for _ in range(30):
            delta = driver.random_op()
            if delta is None:
                continue
            try:
                index.apply(delta)
            except UnsupportedDeltaError:
                index = DynamicIndex.build("t", table, cap=3)
        tids, out = cold_probabilities(table, 3)
        assert tuple(index.tids) == tids
        assert np.array_equal(out, index.topk_probabilities(3))

    def test_suffix_restart_is_localised(self):
        # Mutating the worst-ranked tuple must not re-evaluate the prefix.
        table = UncertainTable(name="t")
        for i in range(200):
            table.add(f"t{i}", float(1000 - i), 0.5)
        index = DynamicIndex.build("t", table, cap=2)
        prev = table.version
        table.update_probability("t199", 0.9)
        suffix = index.apply(TableDelta("t", "update", prev, table.version,
                                        tid="t199", probability=0.9))
        assert suffix <= 2


class TestIndexContracts:
    def test_index_serves_exactly_its_k(self):
        table = UncertainTable(name="t")
        for i in range(10):
            table.add(f"t{i}", float(10 - i), 0.5)
        index = DynamicIndex.build("t", table, cap=3)
        index.topk_probabilities(3)
        with pytest.raises(UnsupportedDeltaError):
            index.topk_probabilities(2)

    def test_version_gap_raises(self):
        from repro.exceptions import StaleDeltaError

        table = UncertainTable(name="t")
        for i in range(5):
            table.add(f"t{i}", float(5 - i), 0.5)
        index = DynamicIndex.build("t", table, cap=2)
        table.update_probability("t0", 0.9)
        table.update_probability("t1", 0.9)
        # skip the first mutation: previous_version doesn't chain
        with pytest.raises(StaleDeltaError):
            index.apply(TableDelta("t", "update", table.version - 1,
                                   table.version, tid="t1", probability=0.9))

    def test_score_collision_refused_before_mutation(self):
        table = UncertainTable(name="t")
        table.add("a", 10.0, 0.5)
        table.add("b", 9.0, 0.5)
        index = DynamicIndex.build("t", table, cap=1)
        prev = table.version
        table.update_score("b", 10.0)  # collides with ("a", 10.0)? no —
        # sort key is (-score, str(tid)); same score, different tid is
        # fine.  A true collision needs the same tid key too, which two
        # distinct tuples cannot have — so moving onto an equal score
        # must be *supported*:
        index.apply(TableDelta("t", "score", prev, table.version,
                               tid="b", score=10.0))
        tids, out = cold_probabilities(table, 1)
        assert tuple(index.tids) == tids
        assert np.array_equal(out, index.topk_probabilities(1))


class TestRegistry:
    def build_db(self, n=20, cap=8):
        db = UncertainDB()
        table = UncertainTable(name="t")
        for i in range(n):
            table.add(f"t{i}", float(n - i), 0.4)
        db.register(table, name="t")
        db.enable_dynamic(cap=cap)
        return db

    def test_engine_answers_match_exact_engine(self):
        db = self.build_db()
        answer = db.ptk("t", k=4, threshold=0.3)
        assert answer.method == "dynamic"
        cold = exact_ptk_query(db.table("t"), TopKQuery(k=4), 0.3)
        assert answer.answers == cold.answers
        for tid in answer.answers:
            assert answer.probabilities[tid] == cold.probabilities[tid]

    def test_mutations_flow_through_deltas(self):
        db = self.build_db()
        db.ptk("t", k=3, threshold=0.3)
        db.add("t", "new", 99.0, 0.9)
        db.update_score("t", "t5", 120.0)
        db.update_probability("t", "t2", 0.95)
        db.remove_tuple("t", "t7")
        db.add_exclusive("t", "r0", "t10", "t11")
        answer = db.ptk("t", k=3, threshold=0.3)
        assert answer.method == "dynamic"
        assert db.dynamic.deltas_applied == 5
        assert db.dynamic.fallbacks == {}
        cold = exact_ptk_query(db.table("t"), TopKQuery(k=3), 0.3)
        assert answer.answers == cold.answers
        for tid, probability in answer.probabilities.items():
            assert cold.probabilities.get(tid, probability) == probability

    def test_k_above_cap_falls_back_to_cold_path(self):
        db = self.build_db(cap=4)
        answer = db.ptk("t", k=6, threshold=0.3)
        assert answer.method != "dynamic"
        assert db.dynamic.fallbacks.get("cap") == 1

    def test_backlog_triggers_rebuild(self):
        db = self.build_db(cap=4)
        db.dynamic.max_backlog = 3
        db.ptk("t", k=2, threshold=0.3)
        for i in range(6):
            db.update_probability("t", f"t{i}", 0.6)
        answer = db.ptk("t", k=2, threshold=0.3)
        assert db.dynamic.fallbacks.get("backlog") == 1
        cold = exact_ptk_query(db.table("t"), TopKQuery(k=2), 0.3)
        assert answer.answers == cold.answers

    def test_direct_table_write_detected_as_stale(self):
        db = self.build_db(cap=4)
        db.ptk("t", k=2, threshold=0.3)
        # bypass the engine: the version advances with no delta
        db.table("t").update_probability("t0", 0.9)
        answer = db.ptk("t", k=2, threshold=0.3)
        assert db.dynamic.fallbacks.get("stale") == 1
        cold = exact_ptk_query(db.table("t"), TopKQuery(k=2), 0.3)
        assert answer.answers == cold.answers

    def test_drop_and_reregister_under_new_epoch(self):
        db = self.build_db(cap=4)
        db.ptk("t", k=2, threshold=0.3)
        db.drop("t")
        assert db.dynamic.tracked() == []
        replacement = UncertainTable(name="t")
        replacement.add("z", 1.0, 0.5)
        db.register(replacement, name="t")
        answer = db.ptk("t", k=2, threshold=0.3)
        assert answer.method == "dynamic"
        assert answer.answers == ["z"]

    def test_stats_shape(self):
        db = self.build_db(cap=4)
        db.ptk("t", k=2, threshold=0.3)
        stats = db.dynamic.stats()
        assert stats["cap"] == 4
        assert stats["tables"]["t"]["indexes"][2]["n"] == 20
        assert stats["reads"] == {"index": 0, "rebuild": 1}


class TestPrepareRefresh:
    def run_refresh(self, mutate, op_fields):
        table = UncertainTable(name="t")
        for i in range(12):
            table.add(f"t{i}", float(12 - i), 0.4)
        prepared = prepare_ranking(table, TopKQuery(k=3))
        prev = table.version
        mutate(table)
        delta = TableDelta("t", previous_version=prev,
                           version=table.version, **op_fields)
        refreshed = refresh_prepared(prepared, table, delta)
        assert refreshed is not None
        oracle = prepare_ranking(table, TopKQuery(k=3))
        assert [t.tid for t in refreshed.ranked] == [
            t.tid for t in oracle.ranked
        ]
        assert refreshed.source_version == table.version
        assert dict(refreshed.rule_probability) == dict(
            oracle.rule_probability
        )

    def test_add(self):
        self.run_refresh(
            lambda t: t.add("new", 6.5, 0.7),
            {"op": "add", "tid": "new", "score": 6.5, "probability": 0.7},
        )

    def test_remove(self):
        self.run_refresh(
            lambda t: t.remove_tuple("t4"),
            {"op": "remove", "tid": "t4"},
        )

    def test_score_move(self):
        self.run_refresh(
            lambda t: t.update_score("t9", 11.5),
            {"op": "score", "tid": "t9", "score": 11.5},
        )

    def test_version_mismatch_declines(self):
        table = UncertainTable(name="t")
        table.add("a", 1.0, 0.5)
        prepared = prepare_ranking(table, TopKQuery(k=1))
        table.update_probability("a", 0.6)
        table.update_probability("a", 0.7)
        stale = TableDelta("t", "update", table.version - 1, table.version,
                           tid="a", probability=0.7)
        # prepared is two versions behind: surgery must refuse
        assert refresh_prepared(prepared, table, stale) is None

    def test_cache_refresh_keeps_entry_warm(self):
        db = UncertainDB()
        table = UncertainTable(name="t")
        for i in range(10):
            table.add(f"t{i}", float(10 - i), 0.4)
        db.register(table, name="t")
        db.ptk("t", k=2, threshold=0.3)
        before = db.prepare_cache.stats()
        db.add("t", "new", 99.0, 0.9)
        db.ptk("t", k=2, threshold=0.3)
        after = db.prepare_cache.stats()
        # the post-mutation read hit the refreshed entry: no new miss
        assert after.misses == before.misses
        assert after.hits == before.hits + 1


class TestDeltaCodec:
    def test_wal_record_round_trip(self):
        from repro.durable.wal import encode_tid

        records = [
            {"op": "add", "table": "t", "version": 3, "tid": encode_tid("x"),
             "score": 1.5, "probability": 0.5, "attributes": {}},
            {"op": "remove", "table": "t", "version": 4,
             "tid": encode_tid("x")},
            {"op": "update", "table": "t", "version": 5,
             "tid": encode_tid("y"), "probability": 0.25},
            {"op": "score", "table": "t", "version": 6,
             "tid": encode_tid("y"), "score": 9.0},
            {"op": "rule", "table": "t", "version": 7, "rule_id": "r1",
             "members": [encode_tid("a"), encode_tid("b")]},
        ]
        for record in records:
            delta = delta_from_record(record, epoch=2)
            assert delta is not None
            assert delta.op == record["op"]
            assert delta.version == record["version"]
            assert delta.previous_version == record["version"] - 1
            assert delta.epoch == 2
        assert delta_from_record({"op": "register", "table": "t"}) is None
        assert delta_from_record({"op": "serve", "table": "t"}) is None


class TestServeIntegration:
    def build_app(self, **config):
        from repro.serve.server import ServeApp, ServeConfig

        db = UncertainDB()
        table = UncertainTable(name="demo")
        for i in range(25):
            table.add(f"t{i}", float(100 - i), 0.2 + 0.01 * i)
        db.register(table, name="demo")
        config.setdefault("window_ms", 0.0)
        config.setdefault("dynamic", True)
        config.setdefault("dynamic_cap", 8)
        return db, ServeApp(db, ServeConfig(**config))

    def test_mutate_then_read_serves_from_index(self):
        from repro import obs
        from repro.serve.client import LoopbackTransport, ServeClient

        db, app = self.build_app()
        try:
            with LoopbackTransport(app) as transport:
                client = ServeClient(transport)
                first = client.query(table="demo", k=3, threshold=0.15)
                assert first["mode"] == "dynamic"
                client.mutate({"op": "add", "table": "demo", "tid": "hot",
                               "score": 500.0, "probability": 0.9})
                client.mutate({"op": "score", "table": "demo", "tid": "t5",
                               "score": 600.0})
                second = client.query(table="demo", k=3, threshold=0.15)
                assert second["mode"] == "dynamic"
                cold = exact_ptk_query(db.table("demo"), TopKQuery(k=3), 0.15)
                assert second["answers"] == [str(t) for t in cold.answers]
                health = client.healthz()
                assert health["dynamic"]["deltas_applied"] == 2
                assert health["dynamic"]["fallbacks"] == {}
                # explicit sampling keeps its semantics
                sampled = client.query(table="demo", k=3, threshold=0.15,
                                       mode="sampled", sample_budget=200)
                assert sampled["mode"] == "sampled"
                # k over the cap takes the planned path
                big = client.query(table="demo", k=20, threshold=0.15)
                assert big["mode"] == "exact"
        finally:
            obs.disable()

    def test_plain_server_accepts_writes_without_replication(self):
        from repro import obs
        from repro.serve.client import LoopbackTransport, ServeClient

        _, app = self.build_app(dynamic=False)
        try:
            with LoopbackTransport(app) as transport:
                client = ServeClient(transport)
                out = client.mutate({"op": "remove", "table": "demo",
                                     "tid": "t3"})
                assert out["version"] > 0
        finally:
            obs.disable()

    def test_dynamic_profile_block_lands_in_flight_recorder(self):
        from repro import obs
        from repro.serve.client import LoopbackTransport, ServeClient

        _, app = self.build_app()
        try:
            with LoopbackTransport(app) as transport:
                client = ServeClient(transport)
                client.query(table="demo", k=3, threshold=0.15)
                debug = client._json("GET", "/debug/queries")
                dynamic = [p for p in debug["profiles"]
                           if p.get("mode") == "dynamic"]
                assert dynamic
                block = dynamic[-1]["dynamic"]
                assert block["indexes"] == [3]
                assert "reads" in block and "fallbacks" in block
        finally:
            obs.disable()
