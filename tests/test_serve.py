"""Tests for the serving layer: protocol, admission, coalescing,
deadline-aware degradation, and the loopback/TCP clients.

Everything except the final TCP round-trip runs over
:class:`~repro.serve.client.LoopbackTransport` — the full service stack
(routing, admission control, the coalescer, and the degradation
planner) without opening a socket, so the suite stays hermetic in CI.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.query.engine import UncertainDB
from repro.query.planner import LatencyModel
from repro.serve import (
    AdmissionController,
    LoopbackTransport,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    RejectedError,
    RequestCoalescer,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServeConfig,
)
from repro.serve.server import serve

from tests.conftest import build_table


@pytest.fixture(autouse=True)
def _obs_off_after():
    """ServeApp enables observability; restore the quiet default."""
    yield
    obs.disable()
    obs.OBS.flight.disable()
    obs.OBS.flight.unconfigure()
    obs.OBS.flight.reset()


def served_table(n: int = 240, name: str = "served"):
    """A mid-sized table with a few exclusion rules for serving tests."""
    rng = random.Random(11)
    probabilities = [round(0.2 + 0.7 * rng.random(), 3) for _ in range(n)]
    rule_groups = []
    for g in range(min(6, n // 2)):
        i, j = 2 * g, 2 * g + 1
        probabilities[i], probabilities[j] = 0.45, 0.4
        rule_groups.append([i, j])
    return build_table(probabilities, rule_groups, name=name)


def make_db(n: int = 240, name: str = "served") -> UncertainDB:
    db = UncertainDB()
    db.register(served_table(n=n, name=name))
    return db


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestQueryRequest:
    def test_minimal_request_defaults(self):
        request = QueryRequest.from_dict(
            {"table": "t", "k": 3, "threshold": 0.5}
        )
        assert request.table == "t"
        assert request.k == 3
        assert request.threshold == 0.5
        assert request.mode == "auto"
        assert request.deadline_ms is None
        assert request.sample_budget is None
        assert request.confidence == 0.95

    def test_full_request(self):
        request = QueryRequest.from_dict(
            {
                "table": "t",
                "k": 2,
                "threshold": 0.4,
                "mode": "sampled",
                "deadline_ms": 125,
                "sample_budget": 500,
                "confidence": 0.9,
            }
        )
        assert request.mode == "sampled"
        assert request.deadline_ms == 125.0
        assert request.sample_budget == 500
        assert request.confidence == 0.9

    @pytest.mark.parametrize("missing", ["table", "k", "threshold"])
    def test_missing_required_field(self, missing):
        payload = {"table": "t", "k": 3, "threshold": 0.5}
        del payload[missing]
        with pytest.raises(ProtocolError, match=missing):
            QueryRequest.from_dict(payload)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("table", ""),
            ("table", 7),
            ("k", 0),
            ("k", -1),
            ("k", 2.5),
            ("k", True),
            ("threshold", 0.0),
            ("threshold", 1.5),
            ("threshold", True),
            ("threshold", "high"),
            ("mode", "fastest"),
            ("deadline_ms", 0),
            ("deadline_ms", -5),
            ("deadline_ms", True),
            ("sample_budget", 0),
            ("sample_budget", 2.5),
            ("sample_budget", True),
            ("confidence", 0.0),
            ("confidence", 1.0),
            ("confidence", True),
        ],
    )
    def test_invalid_field_values(self, field, value):
        payload = {"table": "t", "k": 3, "threshold": 0.5, field: value}
        with pytest.raises(ProtocolError):
            QueryRequest.from_dict(payload)

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="topk"):
            QueryRequest.from_dict(
                {"table": "t", "k": 3, "threshold": 0.5, "topk": 4}
            )

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            QueryRequest.from_dict([1, 2, 3])


class TestQueryResponse:
    def test_exact_response_omits_sampling_fields(self):
        body = QueryResponse(
            table="t", k=2, threshold=0.5, mode="exact",
            answers=["a"], probabilities={"a": 0.8},
        ).to_dict()
        assert body["mode"] == "exact"
        assert "intervals" not in body
        assert "units_drawn" not in body

    def test_sampled_response_carries_intervals(self):
        body = QueryResponse(
            table="t", k=2, threshold=0.5, mode="sampled",
            answers=["a"], probabilities={"a": 0.8},
            intervals={"a": (0.75, 0.85)}, units_drawn=400,
        ).to_dict()
        assert body["units_drawn"] == 400
        assert body["intervals"]["a"] == [0.75, 0.85]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_rejects_past_capacity_with_retry_hint(self):
        admission = AdmissionController(max_inflight=2, max_queue=1)
        for _ in range(3):  # capacity = inflight + queue
            admission.admit()
        with pytest.raises(RejectedError) as excinfo:
            admission.admit()
        assert excinfo.value.retry_after > 0
        admission.release()
        admission.admit()  # a slot freed up

    def test_retry_after_scales_with_backlog(self):
        admission = AdmissionController(max_inflight=1, max_queue=8)
        admission.observe_service(0.2, requests=1)
        admission.admit()
        shallow = admission.retry_after_seconds()
        for _ in range(4):
            admission.admit()
        assert admission.retry_after_seconds() > shallow

    def test_stats_shape(self):
        admission = AdmissionController(max_inflight=2, max_queue=3)
        admission.admit()
        stats = admission.stats()
        assert stats["pending"] == 1
        assert admission.capacity == 5
        assert stats["max_inflight"] == 2
        assert stats["max_queue"] == 3
        assert stats["admitted_total"] == 1
        assert stats["rejected_total"] == 0


# ----------------------------------------------------------------------
# Coalescer (driven directly on a private loop)
# ----------------------------------------------------------------------
class TestRequestCoalescer:
    def test_concurrent_submissions_form_one_batch(self):
        batches = []

        async def main():
            async def dispatch(key, items):
                batches.append(list(items))
                return [item * 10 for item in items]

            coalescer = RequestCoalescer(
                dispatch, window_seconds=0.02, max_batch=16
            )
            return await asyncio.gather(
                *(coalescer.submit("t", i) for i in range(5))
            )

        results = asyncio.run(main())
        assert results == [0, 10, 20, 30, 40]
        assert len(batches) == 1
        assert sorted(batches[0]) == [0, 1, 2, 3, 4]

    def test_max_batch_dispatches_early(self):
        batches = []

        async def main():
            async def dispatch(key, items):
                batches.append(list(items))
                return list(items)

            coalescer = RequestCoalescer(
                dispatch, window_seconds=5.0, max_batch=2
            )
            # A 5 s window would stall the test unless max_batch forces
            # dispatch as soon as each pair is complete.
            return await asyncio.wait_for(
                asyncio.gather(*(coalescer.submit("t", i) for i in range(4))),
                timeout=2.0,
            )

        asyncio.run(main())
        assert sorted(len(b) for b in batches) == [2, 2]

    def test_zero_window_dispatches_solo(self):
        batches = []

        async def main():
            async def dispatch(key, items):
                batches.append(list(items))
                return list(items)

            coalescer = RequestCoalescer(dispatch, window_seconds=0.0)
            return await asyncio.gather(
                *(coalescer.submit("t", i) for i in range(3))
            )

        asyncio.run(main())
        assert all(len(b) == 1 for b in batches)
        assert len(batches) == 3

    def test_exception_result_fails_only_that_item(self):
        async def main():
            async def dispatch(key, items):
                return [
                    ValueError("poisoned") if item == 1 else item
                    for item in items
                ]

            coalescer = RequestCoalescer(
                dispatch, window_seconds=0.02, max_batch=16
            )
            return await asyncio.gather(
                *(coalescer.submit("t", i) for i in range(3)),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], ValueError)

    def test_distinct_keys_do_not_share_batches(self):
        batches = []

        async def main():
            async def dispatch(key, items):
                batches.append((key, list(items)))
                return list(items)

            coalescer = RequestCoalescer(
                dispatch, window_seconds=0.02, max_batch=16
            )
            return await asyncio.gather(
                coalescer.submit("a", 1), coalescer.submit("b", 2)
            )

        asyncio.run(main())
        assert sorted(key for key, _ in batches) == ["a", "b"]


# ----------------------------------------------------------------------
# End-to-end over the loopback transport
# ----------------------------------------------------------------------
def loopback(db, **config_overrides):
    defaults = dict(window_ms=5.0, max_inflight=2, max_queue=16)
    defaults.update(config_overrides)
    latency_model = defaults.pop("latency_model", None)
    app = ServeApp(
        db, ServeConfig(**defaults), latency_model=latency_model
    )
    return LoopbackTransport(app)


class TestLoopbackService:
    def test_query_matches_direct_engine_answer(self):
        db = make_db()
        expected = db.ptk("served", k=5, threshold=0.3)
        with loopback(db) as transport:
            client = ServeClient(transport)
            result = client.query("served", k=5, threshold=0.3)
        assert result["mode"] == "exact"
        assert result["degraded"] is False
        assert result["answers"] == list(expected.answers)
        for tid in expected.answers:
            assert result["probabilities"][str(tid)] == pytest.approx(
                expected.probabilities[tid], abs=1e-6
            )

    def test_healthz_and_tables(self):
        db = make_db()
        with loopback(db) as transport:
            client = ServeClient(transport)
            health = client.healthz()
            tables = client.tables()
        assert health["status"] == "ok"
        assert health["tables"] == 1
        assert "pending" in health["admission"]
        assert tables[0]["name"] == "served"
        assert tables[0]["tuples"] == 240

    def test_unknown_table_is_404(self):
        with loopback(make_db()) as transport:
            client = ServeClient(transport)
            with pytest.raises(ServeClientError) as excinfo:
                client.query("nope", k=2, threshold=0.5)
        assert excinfo.value.status == 404
        assert excinfo.value.body["error"] == "unknown-table"

    def test_malformed_body_is_400(self):
        with loopback(make_db()) as transport:
            status, _ = transport.request("POST", "/query", b"{not json")
            assert status == 400
            status, _ = transport.request(
                "POST", "/query", b'{"table": "served", "k": 0, "threshold": 0.5}'
            )
            assert status == 400

    def test_unknown_route_and_wrong_method(self):
        with loopback(make_db()) as transport:
            status, _ = transport.request("GET", "/nope")
            assert status == 404
            status, _ = transport.request("GET", "/query")
            assert status == 405

    def test_metrics_exposition_names_serve_metrics(self):
        db = make_db()
        with loopback(db) as transport:
            client = ServeClient(transport)
            client.query("served", k=3, threshold=0.4)
            text = client.metrics()
        assert "repro_serve_requests_total" in text
        assert 'endpoint="query"' in text
        assert "repro_serve_batch_size" in text

    def test_forced_sampled_mode_not_marked_degraded(self):
        db = make_db()
        with loopback(db) as transport:
            client = ServeClient(transport)
            result = client.query(
                "served", k=5, threshold=0.3,
                mode="sampled", sample_budget=400,
            )
        assert result["mode"] == "sampled"
        assert result["degraded"] is False
        assert result["units_drawn"] == 400
        for tid in result["answers"]:
            low, high = result["intervals"][str(tid)]
            assert 0.0 <= low <= high <= 1.0

    def test_expired_deadline_is_504(self):
        db = make_db()
        with loopback(db, window_ms=30.0) as transport:
            client = ServeClient(transport)
            # 0.01 ms expires long before the 30 ms coalescing window
            # closes, so the batch runner must refuse, not answer late.
            with pytest.raises(ServeClientError) as excinfo:
                client.query("served", k=3, threshold=0.4, deadline_ms=0.01)
        assert excinfo.value.status == 504
        assert excinfo.value.body["error"] == "deadline-exceeded"


class TestCoalescedBatchSinglePrepare:
    """Acceptance: N concurrent same-table requests -> exactly 1 prepare."""

    def test_one_prepare_for_a_concurrent_batch(self):
        db = make_db()
        n_clients = 6
        before = db.prepare_cache.stats()
        results = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        with loopback(db, window_ms=100.0, max_batch=64) as transport:
            client = ServeClient(transport)

            def worker(index):
                barrier.wait()
                # Mixed k values: the prepare key ignores k, so they
                # must still share the one prepared ranking.
                results[index] = client.query(
                    "served", k=3 + index, threshold=0.3
                )

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)

        after = db.prepare_cache.stats()
        assert all(r is not None for r in results)
        assert {r["batch_size"] for r in results} == {n_clients}
        assert after.misses - before.misses == 1
        # Direct engine answers agree with the batch's.
        for index, result in enumerate(results):
            expected = db.ptk("served", k=3 + index, threshold=0.3)
            assert result["answers"] == list(expected.answers)

    def test_sequential_requests_reuse_warm_prepare(self):
        db = make_db()
        with loopback(db, window_ms=0.0) as transport:
            client = ServeClient(transport)
            client.query("served", k=4, threshold=0.3)
            after_first = db.prepare_cache.stats()
            client.query("served", k=9, threshold=0.5)
            after_second = db.prepare_cache.stats()
        assert after_second.misses == after_first.misses
        assert after_second.hits > after_first.hits


class TestDeadlineDegradation:
    """Acceptance: predicted-unmeetable deadline -> sampled + interval."""

    def slow_model(self):
        # 10 s per DP cell: the planner predicts hours for any exact
        # scan, so every deadlined auto request must degrade.
        return LatencyModel(seconds_per_cell=10.0)

    def test_auto_with_tight_deadline_degrades_to_sampled(self):
        db = make_db()
        with loopback(db, latency_model=self.slow_model()) as transport:
            client = ServeClient(transport)
            started = time.monotonic()
            result = client.query(
                "served", k=5, threshold=0.3, deadline_ms=400
            )
            elapsed = time.monotonic() - started
        assert result["mode"] == "sampled"
        assert result["degraded"] is True
        assert result["units_drawn"] >= 1
        assert result["answers"], "degraded answer should not be empty"
        for tid in result["answers"]:
            low, high = result["intervals"][str(tid)]
            assert 0.0 <= low <= high <= 1.0
            p = result["probabilities"][str(tid)]
            assert low - 1e-9 <= p <= high + 1e-9
        # The entire point: answered within the deadline's order of
        # magnitude instead of timing out.
        assert elapsed < 10.0

    def test_degraded_total_metric_increments(self):
        db = make_db()
        with loopback(db, latency_model=self.slow_model()) as transport:
            client = ServeClient(transport)
            client.query("served", k=5, threshold=0.3, deadline_ms=400)
            text = client.metrics()
        assert "repro_serve_degraded_total" in text
        for line in text.splitlines():
            if line.startswith("repro_serve_degraded_total"):
                assert float(line.split()[-1]) >= 1.0
                break
        else:  # pragma: no cover
            pytest.fail("repro_serve_degraded_total not exported")

    def test_forced_exact_ignores_deadline_prediction(self):
        db = make_db()
        with loopback(db, latency_model=self.slow_model()) as transport:
            client = ServeClient(transport)
            result = client.query(
                "served", k=5, threshold=0.3, mode="exact", deadline_ms=400
            )
        assert result["mode"] == "exact"
        assert result["degraded"] is False

    def test_no_deadline_stays_exact_despite_slow_model(self):
        db = make_db()
        with loopback(db, latency_model=self.slow_model()) as transport:
            client = ServeClient(transport)
            result = client.query("served", k=5, threshold=0.3)
        assert result["mode"] == "exact"

    def test_sampled_answer_quality_close_to_exact(self):
        db = make_db()
        exact = db.ptk("served", k=5, threshold=0.3)
        with loopback(db, latency_model=self.slow_model()) as transport:
            client = ServeClient(transport)
            result = client.query(
                "served", k=5, threshold=0.3, deadline_ms=2000
            )
        assert result["mode"] == "sampled"
        overlap = set(result["answers"]) & set(exact.answers)
        # Sampling is approximate; demand substantial, not perfect,
        # agreement on a well-separated answer set.
        assert len(overlap) >= len(exact.answers) // 2


class TestBackpressure:
    def test_second_request_rejected_when_queue_full(self):
        db = make_db()
        outcome = {}
        with loopback(
            db, window_ms=250.0, max_inflight=1, max_queue=0
        ) as transport:
            client = ServeClient(transport)

            def occupant():
                outcome["first"] = client.query("served", k=3, threshold=0.3)

            thread = threading.Thread(target=occupant)
            thread.start()
            deadline = time.monotonic() + 5.0
            rejected = None
            while time.monotonic() < deadline:
                # Wait until the first request holds the only slot,
                # then the next arrival must bounce with 429.
                try:
                    client.query("served", k=2, threshold=0.3)
                except RejectedError as error:
                    rejected = error
                    break
                time.sleep(0.01)
            thread.join(timeout=30)
        assert rejected is not None, "no request was rejected"
        assert rejected.retry_after > 0
        assert outcome["first"]["answers"]

    def test_rejection_metric_and_stats(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        obs.enable(fresh=True)
        try:
            admission.admit()
            with pytest.raises(RejectedError):
                admission.admit()
            stats = admission.stats()
            assert stats["rejected_total"] == 1
            from repro.obs import export as obs_export

            assert "repro_serve_rejections_total" in obs_export.to_prometheus()
        finally:
            obs.disable()


class TestDropWhileServing:
    def test_drop_between_admit_and_dispatch_is_404(self):
        db = make_db()
        with loopback(db, window_ms=150.0) as transport:
            client = ServeClient(transport)
            error_holder = {}

            def worker():
                try:
                    client.query("served", k=3, threshold=0.3)
                except ServeClientError as error:
                    error_holder["error"] = error

            thread = threading.Thread(target=worker)
            thread.start()
            time.sleep(0.03)  # inside the coalescing window
            db.drop("served")
            thread.join(timeout=30)
        assert error_holder["error"].status == 404


# ----------------------------------------------------------------------
# Real TCP round-trip (one small test; everything else is loopback)
# ----------------------------------------------------------------------
class _TCPServer:
    """Hosts a ServeApp on a real socket for the round-trip test."""

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="repro-serve-tcp-test", daemon=True
        )
        self.thread.start()
        self.server = asyncio.run_coroutine_threadsafe(
            serve(app), self.loop
        ).result(timeout=10)
        self.port = self.server.sockets[0].getsockname()[1]

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def close(self) -> None:
        async def _stop():
            self.server.close()
            await self.server.wait_closed()

        asyncio.run_coroutine_threadsafe(_stop(), self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()
        self.app.shutdown()


def test_tcp_round_trip():
    db = make_db()
    app = ServeApp(db, ServeConfig(port=0, window_ms=1.0))
    server = _TCPServer(app)
    try:
        client = ServeClient.connect("127.0.0.1", server.port, timeout=30)
        assert client.healthz()["status"] == "ok"
        result = client.query("served", k=4, threshold=0.3)
        assert result["mode"] == "exact"
        assert result["answers"] == list(db.ptk("served", k=4, threshold=0.3).answers)
        with pytest.raises(ServeClientError) as excinfo:
            client.query("missing", k=2, threshold=0.5)
        assert excinfo.value.status == 404
        assert "repro_serve_requests_total" in client.metrics()
    finally:
        server.close()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_parser_accepts_serve_arguments(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "tables/",
                "--port", "0",
                "--window-ms", "3",
                "--max-inflight", "2",
                "--deadline-ms", "250",
            ]
        )
        assert args.tables == "tables/"
        assert args.port == 0
        assert args.window_ms == 3.0
        assert args.max_inflight == 2
        assert args.deadline_ms == 250.0
        assert args.fn.__name__ == "_cmd_serve"

    def test_load_table_directory(self, tmp_path):
        from repro.cli import load_table_directory
        from repro.io.jsonio import write_table_json

        write_table_json(served_table(n=20, name="alpha"), tmp_path / "a.json")
        write_table_json(served_table(n=25, name="beta"), tmp_path / "b.json")
        db = load_table_directory(tmp_path)
        assert sorted(db.tables()) == ["alpha", "beta"]
        assert len(db.table("beta")) == 25

    def test_load_table_directory_disambiguates_name_collision(self, tmp_path):
        from repro.cli import load_table_directory
        from repro.io.jsonio import write_table_json

        write_table_json(served_table(n=10, name="dup"), tmp_path / "one.json")
        write_table_json(served_table(n=12, name="dup"), tmp_path / "two.json")
        db = load_table_directory(tmp_path)
        assert sorted(db.tables()) == ["dup", "two"]

    def test_load_table_directory_empty_is_error(self, tmp_path):
        from repro.cli import load_table_directory

        with pytest.raises(ReproError, match="no tables"):
            load_table_directory(tmp_path)


# ----------------------------------------------------------------------
# /debug introspection and flight artefacts
# ----------------------------------------------------------------------
class TestDebugEndpoints:
    def _get_json(self, transport, path):
        status, payload = transport.request("GET", path)
        assert status == 200
        return json.loads(payload.decode("utf-8"))

    def test_debug_queries_shows_served_profiles(self):
        db = make_db()
        with loopback(db) as transport:
            client = ServeClient(transport)
            client.query("served", k=5, threshold=0.3)
            client.query("served", k=3, threshold=0.4)
            body = self._get_json(transport, "/debug/queries")
        assert body["flight"]["enabled"] is True
        assert body["flight"]["recorded"] >= 2
        profiles = body["profiles"]
        assert len(profiles) >= 2
        newest = profiles[0]
        assert newest["kind"] == "served"
        assert newest["served"] is True
        assert newest["table"] == "served"
        assert newest["outcome"] == "ok"
        assert newest["mode"] in ("exact", "sampled")
        assert newest["actual_seconds"] > 0.0
        assert newest["estimated_seconds"] > 0.0
        assert newest["prepare_hit"] in (True, False)

    def test_debug_slow_and_log_file(self, tmp_path):
        db = make_db()
        overrides = dict(slow_ms=0.0, flight_dir=str(tmp_path))
        with loopback(db, **overrides) as transport:
            client = ServeClient(transport)
            for k in (2, 3, 4):
                client.query("served", k=k, threshold=0.35)
            body = self._get_json(transport, "/debug/slow")
        assert body["slow_threshold_ms"] == 0.0
        assert body["slow_log_path"].endswith("slow.jsonl")
        assert len(body["profiles"]) >= 3
        assert all(p["slow"] for p in body["profiles"])

        from repro.obs.flight import read_jsonl

        obs.OBS.flight.close()
        scan = read_jsonl(tmp_path / "slow.jsonl")
        assert scan.problem is None
        assert len(scan.records) >= 3
        assert scan.records[0]["kind"] == "served"

    def test_debug_calibration_reports_residuals(self):
        db = make_db()
        with loopback(db) as transport:
            client = ServeClient(transport)
            for k in range(2, 8):
                client.query("served", k=k, threshold=0.35)
            body = self._get_json(transport, "/debug/calibration")
        assert body["calibrated"] >= 6
        exact = body["engines"]["exact"]
        assert exact["count"] >= 6
        for key in (
            "mean_relative_error",
            "median_relative_error",
            "mean_abs_relative_error",
        ):
            assert isinstance(exact[key], float)
        model = body["latency_model"]
        assert set(model) == {
            "seconds_per_cell",
            "seconds_per_sampled_tuple",
            "floor_seconds",
            "alpha",
        }

    def test_debug_views_counted_in_metrics(self):
        db = make_db()
        with loopback(db) as transport:
            # The registry is process-global: count deltas, not totals.
            before = obs.OBS.registry.get("repro_serve_debug_requests_total")
            queries_0 = before.value(view="queries") if before else 0.0
            calibration_0 = before.value(view="calibration") if before else 0.0
            self._get_json(transport, "/debug/queries")
            self._get_json(transport, "/debug/calibration")
            counter = obs.OBS.registry.get("repro_serve_debug_requests_total")
            assert counter is not None
            assert counter.value(view="queries") == queries_0 + 1.0
            assert counter.value(view="calibration") == calibration_0 + 1.0

    def test_flusher_writes_metrics_and_spans(self, tmp_path):
        db = make_db()
        overrides = dict(
            flight_dir=str(tmp_path), metrics_flush_s=0.05, slow_ms=0.0
        )
        with loopback(db, **overrides) as transport:
            client = ServeClient(transport)
            client.query("served", k=4, threshold=0.35)
            deadline = time.monotonic() + 5.0
            metrics_path = tmp_path / "metrics.json"
            spans_path = tmp_path / "spans.jsonl"
            while time.monotonic() < deadline:
                if metrics_path.exists() and spans_path.exists():
                    try:
                        snapshot = json.loads(metrics_path.read_text())
                    except json.JSONDecodeError:
                        snapshot = None
                    if snapshot and (
                        "repro_serve_requests_total" in snapshot["metrics"]
                    ):
                        break
                time.sleep(0.02)
            else:
                pytest.fail("flusher artefacts never appeared")

        from repro.obs.flight import read_jsonl

        scan = read_jsonl(spans_path)
        assert scan.problem is None
        assert len(scan.records) >= 1
        assert any(
            record["name"].startswith("serve.") or record["name"].startswith("query.")
            for record in scan.records
        )


class TestMetricsHeader:
    """Satellite: /metrics declares whether observability is live."""

    def _metrics_headers(self, app):
        status, headers, _body = asyncio.run(app.dispatch("GET", "/metrics"))
        assert status == 200
        return dict(headers)

    def test_header_true_when_obs_enabled(self):
        app = ServeApp(make_db(), ServeConfig(enable_obs=True))
        headers = self._metrics_headers(app)
        assert headers["X-Repro-Obs-Enabled"] == "true"
        assert headers["Content-Type"].startswith("text/plain")

    def test_header_false_when_obs_disabled(self):
        app = ServeApp(make_db(), ServeConfig(enable_obs=False))
        obs.disable()
        headers = self._metrics_headers(app)
        assert headers["X-Repro-Obs-Enabled"] == "false"
