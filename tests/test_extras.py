"""Tests for the extra semantics (Global-Topk, expected ranks)."""

import pytest
from hypothesis import given, settings

from repro.core.exact import exact_topk_probabilities
from repro.datagen.sensors import panda_table
from repro.query.topk import TopKQuery
from repro.semantics.extras import expected_ranks, global_topk
from repro.semantics.naive import naive_topk_probabilities
from tests.conftest import build_table, uncertain_tables


class TestGlobalTopk:
    def test_returns_k_highest_probability_tuples(self):
        table = panda_table()
        result = global_topk(table, TopKQuery(k=2))
        assert [tid for tid, _ in result] == ["R5", "R2"]

    def test_probabilities_attached(self):
        table = panda_table()
        result = dict(global_topk(table, TopKQuery(k=3)))
        truth = exact_topk_probabilities(table, TopKQuery(k=3))
        for tid, probability in result.items():
            assert probability == pytest.approx(truth[tid])

    def test_fewer_tuples_than_k(self):
        table = build_table([0.5, 0.6], rule_groups=[])
        result = global_topk(table, TopKQuery(k=10))
        assert len(result) == 2

    def test_tie_broken_by_rank(self):
        table = build_table([0.5, 0.5], rule_groups=[])
        result = global_topk(table, TopKQuery(k=1))
        assert result[0][0] == "t0"


class TestExpectedRanks:
    def test_first_tuple_has_rank_one(self):
        table = build_table([0.5, 0.5, 0.5], rule_groups=[])
        ranks = expected_ranks(table, TopKQuery(k=1))
        assert ranks["t0"] == pytest.approx(1.0)

    def test_independent_case_linearity(self):
        table = build_table([0.5, 0.4, 0.3], rule_groups=[])
        ranks = expected_ranks(table, TopKQuery(k=1))
        assert ranks["t1"] == pytest.approx(1.5)
        assert ranks["t2"] == pytest.approx(1.9)

    def test_rule_mates_excluded(self):
        # t1 in a rule with t0: given t1 present, t0 cannot be
        table = build_table([0.5, 0.4], rule_groups=[[0, 1]])
        ranks = expected_ranks(table, TopKQuery(k=1))
        assert ranks["t1"] == pytest.approx(1.0)

    @given(uncertain_tables(max_tuples=8))
    @settings(max_examples=25, deadline=None)
    def test_ranks_monotone_down_the_list(self, table):
        # expected rank can only grow as we go down the ranking, except
        # where rule exclusions drop dominant mass
        ranks = expected_ranks(table, TopKQuery(k=1))
        for tup in table:
            assert ranks[tup.tid] >= 1.0 - 1e-12


class TestConsistencyWithPTK:
    @given(uncertain_tables(max_tuples=8))
    @settings(max_examples=20, deadline=None)
    def test_global_topk_members_have_top_probabilities(self, table):
        query = TopKQuery(k=3)
        result = global_topk(table, query)
        truth = naive_topk_probabilities(table, query)
        chosen = {tid for tid, _ in result}
        worst_chosen = min(truth[tid] for tid in chosen) if chosen else 1.0
        for tid, probability in truth.items():
            if tid not in chosen:
                assert probability <= worst_chosen + 1e-9
