"""Tests for the naive enumeration baseline itself."""

import math

import pytest

from repro.datagen.sensors import PANDA_TOP2_PROBABILITIES, panda_table
from repro.exceptions import EnumerationLimitError, QueryError
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery
from repro.semantics.naive import (
    naive_position_probabilities,
    naive_ptk_answer,
    naive_topk_probabilities,
    naive_topk_vector_probabilities,
)
from tests.conftest import build_table


class TestTopkProbabilities:
    def test_panda_table3(self):
        truth = naive_topk_probabilities(panda_table(), TopKQuery(k=2))
        for tid, expected in PANDA_TOP2_PROBABILITIES.items():
            assert truth[tid] == pytest.approx(expected, abs=1e-12)

    def test_covers_all_selected_tuples(self):
        table = build_table([0.5, 0.4, 0.01], rule_groups=[])
        truth = naive_topk_probabilities(table, TopKQuery(k=1))
        assert set(truth) == {"t0", "t1", "t2"}

    def test_respects_predicate(self):
        table = build_table([0.5, 0.4], rule_groups=[], scores=[10, 20])
        truth = naive_topk_probabilities(
            table, TopKQuery(k=1, predicate=ScoreAbove(15))
        )
        assert set(truth) == {"t1"}
        assert truth["t1"] == pytest.approx(0.4)

    def test_world_limit_forwarded(self):
        table = build_table([0.5] * 12, rule_groups=[])
        with pytest.raises(EnumerationLimitError):
            naive_topk_probabilities(table, TopKQuery(k=2), world_limit=10)


class TestPtkAnswer:
    def test_panda_answer(self):
        answer = naive_ptk_answer(panda_table(), TopKQuery(k=2), 0.35)
        assert answer.answer_set == {"R2", "R3", "R5"}
        assert answer.method == "naive"
        assert answer.answers == ["R2", "R5", "R3"]  # ranking order

    def test_rejects_bad_threshold(self):
        with pytest.raises(QueryError):
            naive_ptk_answer(panda_table(), TopKQuery(k=2), 1.5)


class TestPositionProbabilities:
    def test_rows_sum_to_topk_probability(self):
        table = panda_table()
        query = TopKQuery(k=2)
        positions = naive_position_probabilities(table, query)
        topk = naive_topk_probabilities(table, query)
        for tid, probs in positions.items():
            assert math.fsum(probs) == pytest.approx(topk[tid], abs=1e-12)

    def test_columns_sum_to_rank_occupancy(self):
        # rank j is occupied whenever the world has > j tuples
        table = build_table([0.5, 0.5], rule_groups=[])
        positions = naive_position_probabilities(table, TopKQuery(k=2))
        rank1 = sum(p[0] for p in positions.values())
        rank2 = sum(p[1] for p in positions.values())
        assert rank1 == pytest.approx(1 - 0.25)  # any tuple present
        assert rank2 == pytest.approx(0.25)  # both present


class TestVectorProbabilities:
    def test_panda_vectors_sum_to_one(self):
        vectors = naive_topk_vector_probabilities(panda_table(), TopKQuery(k=2))
        assert math.fsum(vectors.values()) == pytest.approx(1.0)

    def test_known_vector_value(self):
        # <R5, R3> aggregates worlds W9 (0.28): the paper's U-Top2 winner
        vectors = naive_topk_vector_probabilities(panda_table(), TopKQuery(k=2))
        assert vectors[("R5", "R3")] == pytest.approx(0.28)
