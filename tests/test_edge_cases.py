"""Edge cases and failure injection across the whole stack."""

import pytest

from repro.core.exact import ExactVariant, exact_ptk_query, exact_topk_probabilities
from repro.core.sampling import SamplingConfig, sampled_topk_probabilities
from repro.core.subset_probability import SubsetProbabilityVector
from repro.model.table import UncertainTable
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery
from repro.semantics.ukranks import ukranks_query
from repro.semantics.utopk import utopk_query
from tests.conftest import build_table


class TestEmptyAndTiny:
    def test_empty_table_query(self):
        table = UncertainTable()
        answer = exact_ptk_query(table, TopKQuery(k=3), 0.5)
        assert answer.answers == []
        assert answer.stats.scan_depth == 0

    def test_predicate_rejecting_everything(self):
        table = build_table([0.5, 0.4], rule_groups=[])
        query = TopKQuery(k=2, predicate=ScoreAbove(1e9))
        answer = exact_ptk_query(table, query, 0.5)
        assert answer.answers == []

    def test_single_tuple(self):
        table = build_table([0.8], rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=1), 0.5)
        assert answer.answers == ["t0"]
        assert answer.probabilities["t0"] == pytest.approx(0.8)

    def test_k_much_larger_than_table(self):
        table = build_table([0.8, 0.3], rule_groups=[])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=100))
        assert probabilities["t0"] == pytest.approx(0.8)
        assert probabilities["t1"] == pytest.approx(0.3)

    def test_empty_table_sampling(self):
        table = UncertainTable()
        result = sampled_topk_probabilities(
            table,
            TopKQuery(k=2),
            SamplingConfig(sample_size=10, progressive=False, seed=1),
        )
        assert result.estimates == {}

    def test_empty_table_utopk_and_ukranks(self):
        table = UncertainTable()
        assert utopk_query(table, TopKQuery(k=2)).vector == ()
        ukranks = ukranks_query(table, TopKQuery(k=2))
        assert all(tid is None for tid, _ in ukranks.winners)


class TestCertainTuples:
    def test_all_certain(self):
        table = build_table([1.0, 1.0, 1.0], rule_groups=[])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=2))
        assert probabilities == {"t0": 1.0, "t1": 1.0, "t2": 0.0}

    def test_certain_tuple_blocks_tail(self):
        # k certain tuples at the top: everything below has Pr^k = 0
        table = build_table([1.0, 1.0, 0.9, 0.8], rule_groups=[])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=2))
        assert probabilities["t2"] == pytest.approx(0.0)
        assert probabilities["t3"] == pytest.approx(0.0)

    def test_pruning_stops_fast_behind_certain_wall(self):
        table = build_table([1.0] * 5 + [0.5] * 200, rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=5), 0.4)
        assert answer.answer_set == {f"t{i}" for i in range(5)}
        assert answer.stats.scan_depth < 60

    def test_certain_rule_with_two_members(self):
        # Pr(R) = 1: exactly one member appears in every world
        table = build_table([0.5, 0.5, 0.8], rule_groups=[[0, 1]])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=1))
        assert probabilities["t0"] == pytest.approx(0.5)
        assert probabilities["t1"] == pytest.approx(0.5)
        assert probabilities["t2"] == pytest.approx(0.0)


class TestExtremeThresholds:
    def test_threshold_one_returns_only_certain_winners(self):
        table = build_table([1.0, 1.0, 0.999], rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=2), 1.0)
        assert answer.answer_set == {"t0", "t1"}

    def test_tiny_threshold_returns_everything_possible(self):
        table = build_table([0.5, 0.4, 0.3], rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=3), 1e-12)
        assert answer.answer_set == {"t0", "t1", "t2"}


class TestRuleSpansAndOrdering:
    def test_rule_spanning_entire_table(self):
        table = build_table(
            [0.2, 0.5, 0.2, 0.4, 0.2],
            rule_groups=[[0, 2, 4]],
        )
        for variant in ExactVariant:
            probabilities = exact_topk_probabilities(
                table, TopKQuery(k=2), variant=variant
            )
            from repro.semantics.naive import naive_topk_probabilities

            truth = naive_topk_probabilities(table, TopKQuery(k=2))
            for tid, expected in truth.items():
                assert probabilities[tid] == pytest.approx(expected, abs=1e-9)

    def test_adjacent_rule_members(self):
        # consecutive ranks in the same rule stress Corollary 2 paths
        table = build_table([0.4, 0.3, 0.3, 0.6], rule_groups=[[1, 2]])
        from repro.semantics.naive import naive_topk_probabilities

        truth = naive_topk_probabilities(table, TopKQuery(k=2))
        got = exact_topk_probabilities(table, TopKQuery(k=2))
        for tid, expected in truth.items():
            assert got[tid] == pytest.approx(expected, abs=1e-9)

    def test_many_tiny_rules(self):
        groups = [[2 * i, 2 * i + 1] for i in range(10)]
        table = build_table([0.4, 0.4] * 10, rule_groups=groups)
        from repro.semantics.naive import naive_topk_probabilities

        truth = naive_topk_probabilities(table, TopKQuery(k=3))
        for variant in ExactVariant:
            got = exact_topk_probabilities(table, TopKQuery(k=3), variant=variant)
            for tid, expected in truth.items():
                assert got[tid] == pytest.approx(expected, abs=1e-9)


class TestNumericalStability:
    def test_many_extensions_stay_normalised(self):
        vector = SubsetProbabilityVector(11)
        for i in range(10_000):
            vector.extend(0.37)
        values = vector.values
        assert (values >= 0).all()
        assert values.sum() <= 1.0 + 1e-9

    def test_probabilities_never_exceed_one_after_long_scan(self):
        table = build_table([0.999] * 500, rule_groups=[])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=10))
        for value in probabilities.values():
            assert -1e-12 <= value <= 1.0 + 1e-12

    def test_extreme_probability_mix(self):
        table = build_table([1e-3, 0.999, 1e-3, 0.999, 0.5], rule_groups=[])
        from repro.semantics.naive import naive_topk_probabilities

        truth = naive_topk_probabilities(table, TopKQuery(k=2))
        got = exact_topk_probabilities(table, TopKQuery(k=2))
        for tid, expected in truth.items():
            assert got[tid] == pytest.approx(expected, abs=1e-12)
