"""Unit tests for the uncertain table container."""

import pytest

from repro.exceptions import (
    DuplicateTupleError,
    RuleConflictError,
    UnknownTupleError,
    ValidationError,
)
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable, table_from_rows
from repro.model.tuples import UncertainTuple


def small_table() -> UncertainTable:
    table = UncertainTable(name="small")
    table.add("a", score=30, probability=0.5, color="red")
    table.add("b", score=20, probability=0.4)
    table.add("c", score=10, probability=0.3)
    return table


class TestConstruction:
    def test_add_and_get(self):
        table = small_table()
        assert table.get("a").probability == 0.5
        assert table.get("a").attributes["color"] == "red"

    def test_len_and_iteration_order(self):
        table = small_table()
        assert len(table) == 3
        assert [t.tid for t in table] == ["a", "b", "c"]

    def test_duplicate_tuple_rejected(self):
        table = small_table()
        with pytest.raises(DuplicateTupleError):
            table.add("a", score=1, probability=0.1)

    def test_unknown_tuple_raises(self):
        with pytest.raises(UnknownTupleError):
            small_table().get("zzz")

    def test_contains(self):
        table = small_table()
        assert "a" in table
        assert "z" not in table

    def test_table_from_rows(self):
        table = table_from_rows([("x", 5, 0.2), ("y", 3, 0.9)])
        assert len(table) == 2
        assert table.probability("y") == 0.9


class TestRules:
    def test_add_rule_and_lookup(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        assert table.rule_of("a").rule_id == "r1"
        assert table.rule_of("b").rule_id == "r1"
        assert not table.is_independent("a")
        assert table.is_independent("c")

    def test_synthetic_singleton_for_independent(self):
        table = small_table()
        rule = table.rule_of("c")
        assert rule.is_singleton
        assert rule.tuple_ids == ("c",)

    def test_rules_partition_table(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        covered = sorted(tid for rule in table.rules() for tid in rule.tuple_ids)
        assert covered == ["a", "b", "c"]

    def test_rule_with_unknown_member_rejected(self):
        table = small_table()
        with pytest.raises(UnknownTupleError):
            table.add_exclusive("r1", "a", "nope")

    def test_tuple_in_two_rules_rejected(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        with pytest.raises(RuleConflictError):
            table.add_exclusive("r2", "b", "c")

    def test_rule_probability_above_one_rejected(self):
        table = UncertainTable()
        table.add("x", 1, 0.7)
        table.add("y", 2, 0.7)
        with pytest.raises(ValidationError):
            table.add_exclusive("r", "x", "y")

    def test_duplicate_rule_id_rejected(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        with pytest.raises(ValidationError):
            table.add_rule(GenerationRule(rule_id="r1", tuple_ids=("c",)))

    def test_rule_probability_sum(self):
        table = small_table()
        rule = table.add_exclusive("r1", "a", "b")
        assert table.rule_probability(rule) == pytest.approx(0.9)

    def test_multi_rule_id_of(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        assert table.multi_rule_id_of("a") == "r1"
        assert table.multi_rule_id_of("c") is None


class TestDerivedTables:
    def test_filter_keeps_probabilities_and_attributes(self):
        table = small_table()
        filtered = table.filter(lambda t: t.score >= 20)
        assert [t.tid for t in filtered] == ["a", "b"]
        assert filtered.get("a").attributes["color"] == "red"

    def test_filter_projects_rules(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        filtered = table.filter(lambda t: t.tid != "b")
        # rule reduced to one member -> tuple becomes independent
        assert filtered.is_independent("a")
        assert filtered.multi_rules() == []

    def test_filter_keeps_surviving_multi_rules(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        filtered = table.filter(lambda t: t.tid in ("a", "b"))
        assert len(filtered.multi_rules()) == 1

    def test_subset(self):
        table = small_table()
        sub = table.subset(["a", "c"])
        assert sorted(t.tid for t in sub) == ["a", "c"]

    def test_subset_unknown_id_raises(self):
        with pytest.raises(UnknownTupleError):
            small_table().subset(["a", "nope"])


class TestRankingAndStats:
    def test_ranked_tuples_descending_score(self):
        table = small_table()
        assert [t.tid for t in table.ranked_tuples()] == ["a", "b", "c"]

    def test_ranked_tuples_custom_key(self):
        table = small_table()
        ranked = table.ranked_tuples(key=lambda t: t.probability)
        assert [t.tid for t in ranked] == ["a", "b", "c"]

    def test_ranked_tuples_tie_broken_by_id(self):
        table = UncertainTable()
        table.add("z", 5, 0.5)
        table.add("a", 5, 0.5)
        assert [t.tid for t in table.ranked_tuples()] == ["a", "z"]

    def test_expected_size(self):
        assert small_table().expected_size() == pytest.approx(1.2)

    def test_validate_passes_on_well_formed(self):
        table = small_table()
        table.add_exclusive("r1", "a", "b")
        table.validate()

    def test_validate_catches_smuggled_bad_rule(self):
        table = small_table()
        # bypass add_rule's checks to simulate a corrupted deserialisation
        table._rules["evil"] = GenerationRule(
            rule_id="evil", tuple_ids=("a", "ghost")
        )
        with pytest.raises(UnknownTupleError):
            table.validate()
