"""Tests for the subset-probability DP (Theorem 2 / Poisson binomial)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subset_probability import (
    SubsetProbabilityVector,
    poisson_binomial_pmf,
    prefix_subset_probabilities,
    subset_probabilities,
)
from repro.exceptions import QueryError

probs = st.lists(
    st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=10,
)


def brute_force_pmf(probabilities):
    """Exact Poisson-binomial pmf by summing over all subsets."""
    n = len(probabilities)
    pmf = [0.0] * (n + 1)
    for included in itertools.product([0, 1], repeat=n):
        p = 1.0
        for choice, prob in zip(included, probabilities):
            p *= prob if choice else (1 - prob)
        pmf[sum(included)] += p
    return pmf


class TestVectorBasics:
    def test_empty_set(self):
        vector = SubsetProbabilityVector(3)
        assert vector.probability_at(0) == 1.0
        assert vector.probability_at(1) == 0.0
        assert vector.size == 0

    def test_single_extension(self):
        vector = SubsetProbabilityVector(3)
        vector.extend(0.3)
        assert vector.probability_at(0) == pytest.approx(0.7)
        assert vector.probability_at(1) == pytest.approx(0.3)
        assert vector.size == 1
        assert vector.extension_count == 1

    def test_example2_values(self):
        # Paper Example 2: after t1..t3 (0.7, 0.2, 1.0):
        # Pr(S,0)=0, Pr(S,1)=0.24, Pr(S,2)=0.62
        vector = SubsetProbabilityVector(3)
        vector.extend_many([0.7, 0.2, 1.0])
        assert vector.probability_at(0) == pytest.approx(0.0)
        assert vector.probability_at(1) == pytest.approx(0.24)
        assert vector.probability_at(2) == pytest.approx(0.62)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(QueryError):
            SubsetProbabilityVector(0)

    def test_probability_at_bounds(self):
        vector = SubsetProbabilityVector(2)
        with pytest.raises(QueryError):
            vector.probability_at(2)
        with pytest.raises(QueryError):
            vector.probability_at(-1)

    def test_probability_fewer_than(self):
        vector = SubsetProbabilityVector(3)
        vector.extend_many([0.5, 0.5])
        assert vector.probability_fewer_than(0) == 0.0
        assert vector.probability_fewer_than(2) == pytest.approx(0.75)
        assert vector.probability_fewer_than(3) == pytest.approx(1.0)
        with pytest.raises(QueryError):
            vector.probability_fewer_than(4)

    def test_probability_at_most(self):
        vector = SubsetProbabilityVector(3)
        vector.extend(0.5)
        assert vector.probability_at_most(1) == pytest.approx(1.0)

    def test_values_view_is_readonly(self):
        vector = SubsetProbabilityVector(3)
        with pytest.raises(ValueError):
            vector.values[0] = 5.0

    def test_copy_is_independent(self):
        vector = SubsetProbabilityVector(3)
        vector.extend(0.4)
        clone = vector.copy()
        clone.extend(0.9)
        assert vector.size == 1
        assert clone.size == 2
        assert vector.probability_at(0) == pytest.approx(0.6)

    def test_snapshot_roundtrip(self):
        vector = SubsetProbabilityVector(4)
        vector.extend_many([0.2, 0.9])
        snap = vector.snapshot()
        rebuilt = SubsetProbabilityVector.from_snapshot(snap, size=2)
        assert rebuilt.size == 2
        np.testing.assert_allclose(rebuilt.values, vector.values)

    def test_snapshot_is_immutable(self):
        vector = SubsetProbabilityVector(2)
        snap = vector.snapshot()
        with pytest.raises(ValueError):
            snap[0] = 2.0


class TestAgainstBruteForce:
    @given(probs)
    @settings(max_examples=60, deadline=None)
    def test_full_pmf_matches_brute_force(self, probabilities):
        expected = brute_force_pmf(probabilities)
        got = poisson_binomial_pmf(probabilities)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @given(probs, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_truncated_matches_brute_force_prefix(self, probabilities, cap):
        expected = brute_force_pmf(probabilities)[:cap]
        expected += [0.0] * (cap - len(expected))
        got = subset_probabilities(probabilities, cap)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @given(probs)
    @settings(max_examples=40, deadline=None)
    def test_pmf_sums_to_one(self, probabilities):
        pmf = poisson_binomial_pmf(probabilities)
        assert math.fsum(pmf.tolist()) == pytest.approx(1.0, abs=1e-9)

    @given(probs)
    @settings(max_examples=40, deadline=None)
    def test_order_insensitive(self, probabilities):
        forward = poisson_binomial_pmf(probabilities)
        backward = poisson_binomial_pmf(list(reversed(probabilities)))
        np.testing.assert_allclose(forward, backward, atol=1e-12)


class TestPrefixSnapshots:
    def test_prefix_count(self):
        snaps = prefix_subset_probabilities([0.5, 0.5, 0.5], cap=2)
        assert len(snaps) == 4

    def test_each_prefix_matches_direct_computation(self):
        probabilities = [0.2, 0.7, 0.4, 0.9]
        snaps = prefix_subset_probabilities(probabilities, cap=3)
        for i in range(len(probabilities) + 1):
            direct = subset_probabilities(probabilities[:i], cap=3)
            np.testing.assert_allclose(snaps[i], direct, atol=1e-12)
