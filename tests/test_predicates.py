"""Unit tests for query predicates."""

from repro.model.tuples import UncertainTuple
from repro.query.predicates import (
    AlwaysTrue,
    AttributeEquals,
    AttributePredicate,
    ScoreAbove,
    ScoreBelow,
)


def tup(score=10.0, **attributes):
    return UncertainTuple(
        tid="t", score=score, probability=0.5, attributes=attributes
    )


class TestAtoms:
    def test_always_true(self):
        assert AlwaysTrue()(tup())

    def test_score_above(self):
        assert ScoreAbove(5)(tup(score=10))
        assert not ScoreAbove(10)(tup(score=10))  # strict
        assert not ScoreAbove(15)(tup(score=10))

    def test_score_below(self):
        assert ScoreBelow(15)(tup(score=10))
        assert not ScoreBelow(10)(tup(score=10))  # strict

    def test_attribute_equals(self):
        assert AttributeEquals("loc", "B")(tup(loc="B"))
        assert not AttributeEquals("loc", "B")(tup(loc="A"))

    def test_attribute_equals_missing_attribute(self):
        assert not AttributeEquals("loc", "B")(tup())

    def test_attribute_equals_none_value(self):
        # a stored None must match an expected None (sentinel check)
        assert AttributeEquals("loc", None)(tup(loc=None))

    def test_attribute_predicate(self):
        pred = AttributePredicate("count", lambda v: v > 3)
        assert pred(tup(count=5))
        assert not pred(tup(count=2))

    def test_attribute_predicate_missing_attribute(self):
        pred = AttributePredicate("count", lambda v: True)
        assert not pred(tup())


class TestComposition:
    def test_and(self):
        pred = ScoreAbove(5) & AttributeEquals("loc", "B")
        assert pred(tup(score=10, loc="B"))
        assert not pred(tup(score=10, loc="A"))
        assert not pred(tup(score=1, loc="B"))

    def test_or(self):
        pred = ScoreAbove(50) | AttributeEquals("loc", "B")
        assert pred(tup(score=10, loc="B"))
        assert pred(tup(score=99, loc="A"))
        assert not pred(tup(score=10, loc="A"))

    def test_not(self):
        pred = ~ScoreAbove(5)
        assert pred(tup(score=3))
        assert not pred(tup(score=10))

    def test_nested_composition(self):
        pred = ~(ScoreAbove(5) & ScoreBelow(15))
        assert not pred(tup(score=10))
        assert pred(tup(score=20))
