"""Tests for experiment-table rendering."""

from repro.bench.harness import ExperimentTable
from repro.bench.reporting import print_table, render_table


def sample_table():
    table = ExperimentTable(
        title="Demo", columns=["x", "value", "flag"], notes="note here"
    )
    table.add_row(1, 0.5, True)
    table.add_row(10_000, 1234.5678, False)
    table.add_row(3, 0.000123, True)
    return table


class TestRendering:
    def test_title_and_notes_present(self):
        text = render_table(sample_table())
        assert "== Demo ==" in text
        assert "note here" in text

    def test_all_rows_rendered(self):
        text = render_table(sample_table())
        assert text.count("\n") >= 5  # title, notes, header, rule, 3 rows

    def test_large_numbers_thousands_separated(self):
        text = render_table(sample_table())
        assert "10,000" in text
        assert "1,235" in text  # 1234.5678 -> rounded with separator

    def test_small_floats_keep_precision(self):
        text = render_table(sample_table())
        assert "0.000123" in text

    def test_booleans_verbatim(self):
        text = render_table(sample_table())
        assert "True" in text and "False" in text

    def test_zero_renders_compactly(self):
        table = ExperimentTable(title="z", columns=["v"])
        table.add_row(0.0)
        assert "\n0" in render_table(table)

    def test_columns_aligned(self):
        text = render_table(sample_table())
        lines = text.splitlines()
        header = lines[2]
        rule = lines[3]
        assert len(header) == len(rule)

    def test_print_table(self, capsys):
        print_table(sample_table())
        assert "Demo" in capsys.readouterr().out

    def test_empty_table(self):
        table = ExperimentTable(title="empty", columns=["a", "b"])
        text = render_table(table)
        assert "empty" in text
        assert "a" in text
