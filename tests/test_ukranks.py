"""Tests for the U-KRanks baseline (most probable tuple per rank)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.sensors import panda_table
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_position_probabilities
from repro.semantics.ukranks import (
    ukranks_from_position_probabilities,
    ukranks_query,
)
from tests.conftest import build_table, uncertain_tables


class TestPaperValues:
    def test_panda_u2ranks_is_r5_twice(self):
        # Paper Section 1: U-2Ranks on Table 1 returns <R5, R5>.
        answer = ukranks_query(panda_table(), TopKQuery(k=2))
        assert answer.tuple_ids == ["R5", "R5"]

    def test_panda_rank_probabilities(self):
        answer = ukranks_query(panda_table(), TopKQuery(k=2))
        # Pr(R5 ranked 1st): R5 present, R1 and R2/R3 absent... verified
        # against enumeration below; spot-check the winning values here.
        (tid1, p1), (tid2, p2) = answer.winners
        truth = naive_position_probabilities(panda_table(), TopKQuery(k=2))
        assert p1 == pytest.approx(truth["R5"][0], abs=1e-9)
        assert p2 == pytest.approx(truth["R5"][1], abs=1e-9)


class TestAgainstEnumeration:
    @given(uncertain_tables(max_tuples=9), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_winner_probabilities_are_maxima(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_position_probabilities(table, query)
        answer = ukranks_query(table, query)
        for j, (tid, probability) in enumerate(answer.winners):
            best = max(probs[j] for probs in truth.values())
            assert probability == pytest.approx(best, abs=1e-9)
            assert truth[tid][j] == pytest.approx(probability, abs=1e-9)


class TestAnswerObject:
    def test_duplicates_allowed(self):
        positions = {"a": [0.9, 0.8], "b": [0.1, 0.2]}
        answer = ukranks_from_position_probabilities(positions, k=2)
        assert answer.tuple_ids == ["a", "a"]
        assert answer.distinct_tuple_ids == ["a"]

    def test_tie_broken_by_id(self):
        positions = {"z": [0.5], "a": [0.5]}
        answer = ukranks_from_position_probabilities(positions, k=1)
        assert answer.tuple_ids == ["a"]

    def test_len(self):
        answer = ukranks_query(panda_table(), TopKQuery(k=2))
        assert len(answer) == 2

    def test_short_probability_lists_treated_as_zero(self):
        positions = {"a": [0.5], "b": [0.4, 0.9]}
        answer = ukranks_from_position_probabilities(positions, k=2)
        assert answer.winners[1][0] == "b"


class TestBehaviour:
    def test_high_rank_dominated_by_top_tuple(self):
        table = build_table([0.99, 0.5, 0.5], rule_groups=[])
        answer = ukranks_query(table, TopKQuery(k=1))
        assert answer.tuple_ids == ["t0"]

    def test_rank_k_with_rules(self):
        table = build_table([0.6, 0.3, 0.5, 0.4], rule_groups=[[1, 3]])
        query = TopKQuery(k=3)
        truth = naive_position_probabilities(table, query)
        answer = ukranks_query(table, query)
        for j, (tid, probability) in enumerate(answer.winners):
            assert probability == pytest.approx(
                max(p[j] for p in truth.values()), abs=1e-9
            )
