"""Tests for batch PT-k answering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_ptk_queries, threshold_sweep
from repro.core.exact import exact_ptk_query
from repro.datagen.sensors import panda_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from tests.conftest import uncertain_tables


class TestBatch:
    def test_empty_requests(self):
        assert batch_ptk_queries(panda_table(), []) == []

    def test_matches_individual_queries_on_panda(self):
        table = panda_table()
        requests = [(1, 0.3), (2, 0.35), (2, 0.7)]
        batch = batch_ptk_queries(table, requests)
        for (k, threshold), answer in zip(requests, batch):
            individual = exact_ptk_query(
                table, TopKQuery(k=k), threshold, pruning=False
            )
            assert answer.answer_set == individual.answer_set
            for tid, probability in individual.probabilities.items():
                assert answer.probabilities[tid] == pytest.approx(
                    probability, abs=1e-9
                )

    @given(uncertain_tables(max_tuples=9), st.lists(
        st.tuples(st.integers(1, 5), st.floats(0.05, 0.95)),
        min_size=1, max_size=4,
    ))
    @settings(max_examples=25, deadline=None)
    def test_matches_individual_queries(self, table, requests):
        batch = batch_ptk_queries(table, requests)
        for (k, threshold), answer in zip(requests, batch):
            individual = exact_ptk_query(
                table, TopKQuery(k=k), threshold, pruning=False
            )
            # skip knife-edge thresholds
            boundary = any(
                abs(probability - threshold) < 1e-9
                for probability in individual.probabilities.values()
            )
            if not boundary:
                assert answer.answer_set == individual.answer_set

    def test_validation(self):
        table = panda_table()
        with pytest.raises(QueryError):
            batch_ptk_queries(table, [(0, 0.5)])
        with pytest.raises(QueryError):
            batch_ptk_queries(table, [(2, 0.0)])
        with pytest.raises(QueryError):
            batch_ptk_queries(table, [(2.0, 0.5)])


class TestThresholdSweep:
    def test_sweep_monotone(self):
        table = panda_table()
        sweep = threshold_sweep(table, k=2, thresholds=[0.1, 0.35, 0.7])
        assert set(sweep[0.35]) == {"R2", "R3", "R5"}
        # higher thresholds keep subsets
        assert set(sweep[0.7]) <= set(sweep[0.35]) <= set(sweep[0.1])

    def test_answers_in_ranking_order(self):
        table = panda_table()
        sweep = threshold_sweep(table, k=2, thresholds=[0.35])
        assert sweep[0.35] == ["R2", "R5", "R3"]
