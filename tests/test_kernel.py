"""Tests for the columnar kernel: primitives, parity, and zero-copy serving.

The kernel (:mod:`repro.core.kernel`) promises three things this module
pins down:

* every probability summation routes through one compensated primitive,
  so no two code paths can disagree about the same partial sum;
* the vectorized full scan stays within ``1e-12`` of the retained
  scalar implementation on every table shape; and
* snapshot recovery can serve full scans from memory-mapped columns
  without materialising tuple objects.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.exact import ExactVariant, exact_ptk_query, exact_topk_probabilities
from repro.core.kernel import (
    RunningSum,
    TableColumns,
    columnar_topk_scan,
    compensated_sum,
    dp_divide_out,
    dp_extend,
    dp_extend_chain,
    fewer_than_k,
    fewer_than_k_batch,
    ranked_order,
)
from repro.core.subset_probability import SubsetProbabilityVector
from repro.durable.snapshot import (
    open_latest_snapshot_columns,
    open_snapshot_columns,
    write_snapshot,
)
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.query.prepare import prepare_ranking
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from tests.conftest import build_table, uncertain_tables

ALL_VARIANTS = list(ExactVariant)

#: A vector whose naive (pairwise) ``ndarray.sum()`` differs from the
#: exactly rounded ``math.fsum`` by one ulp — the shape of the summation
#: divergence this PR removes from ``exact._evaluate``.
ULP_VECTOR = [0.0833, 0.12, 0.0784, 0.0974, 0.1039, 0.0635, 0.0478]

#: Independent probabilities whose Theorem-2 DP vector entries fsum to
#: ``0.9999999999999999`` although the true total is exactly 1: a tuple
#: scanned right after them, with fewer than k units ahead, has a true
#: ``Pr(|T(t)| < k)`` of exactly 1 that a summed DP would understate.
SHORT_SCAN_PREFIX = [0.773, 0.453, 0.122, 0.338]


def random_table(
    seed: int,
    n: int,
    rule_fraction: float = 0.3,
    hot_rules: bool = False,
) -> UncertainTable:
    """A seeded random table with controllable rule density.

    With ``hot_rules`` some rules sum near (or exactly to) 1.0, forcing
    the kernel off the divide-out fast path and onto the rebuild path.
    """
    rng = random.Random(seed)
    table = UncertainTable(name=f"random-{seed}-{n}")
    for i in range(n):
        table.add(
            f"t{i:05d}",
            score=rng.uniform(0.0, 1000.0),
            probability=rng.uniform(0.01, 0.99),
        )
    in_rules = int(n * rule_fraction)
    indices = rng.sample(range(n), in_rules)
    g = 0
    while len(indices) >= 2:
        size = min(rng.randint(2, 5), len(indices))
        members = [indices.pop() for _ in range(size)]
        if hot_rules and g % 3 == 0:
            # Certain rule: members share probability 1/size exactly.
            share = 1.0 / size
            for i in members:
                table.update_probability(f"t{i:05d}", share)
        else:
            total = math.fsum(table.probability(f"t{i:05d}") for i in members)
            if total > 0.95:
                scale = 0.95 / total
                for i in members:
                    table.update_probability(
                        f"t{i:05d}", table.probability(f"t{i:05d}") * scale
                    )
        table.add_exclusive(f"r{g}", *[f"t{i:05d}" for i in members])
        g += 1
    return table


class TestSummationPrimitive:
    def test_compensated_sum_is_fsum(self):
        values = [1e16, 1.0, -1e16, 1.0]
        assert compensated_sum(values) == math.fsum(values) == 2.0

    def test_compensated_sum_accepts_ndarray(self):
        array = np.array(ULP_VECTOR)
        assert compensated_sum(array) == math.fsum(ULP_VECTOR)

    def test_fewer_than_k_uses_exact_rounding(self):
        # Regression for the PR-6-era bug: exact._evaluate used a naive
        # ndarray .sum() while the DP vector class used fsum, so the
        # same vector produced two different "Pr fewer than k" values.
        vector = np.array(ULP_VECTOR)
        naive = float(vector.sum())
        exact = math.fsum(ULP_VECTOR)
        assert naive != exact  # the fixture really straddles an ulp
        assert fewer_than_k(vector, len(ULP_VECTOR)) == exact

    def test_fewer_than_k_clamps_at_one(self):
        vector = np.array([0.7, 0.2, 0.1 + 1e-13])
        assert fewer_than_k(vector, 3) == 1.0

    def test_fewer_than_k_prefix(self):
        vector = np.array([0.5, 0.25, 0.25])
        assert fewer_than_k(vector, 1) == 0.5
        assert fewer_than_k(vector, 2) == 0.75

    def test_fewer_than_k_rejects_bad_k(self):
        vector = np.zeros(4)
        with pytest.raises(QueryError):
            fewer_than_k(vector, -1)
        with pytest.raises(QueryError):
            fewer_than_k(vector, 5)

    def test_batch_matches_scalar_rows(self):
        rng = random.Random(3)
        matrix = np.array(
            [[rng.uniform(0.0, 0.2) for _ in range(6)] for _ in range(40)]
        )
        for k in (1, 3, 6):
            batch = fewer_than_k_batch(matrix, k)
            for row, value in zip(matrix, batch):
                assert value == fewer_than_k(row, k)

    def test_batch_empty(self):
        assert fewer_than_k_batch(np.empty((0, 4)), 2).shape == (0,)

    def test_running_sum_matches_fsum(self):
        rng = random.Random(11)
        values = [rng.uniform(0.0, 1.0) * 10 ** rng.randint(-12, 0) for _ in range(5000)]
        acc = RunningSum()
        for v in values:
            acc.add(v)
        assert acc.count == len(values)
        assert acc.value == pytest.approx(math.fsum(values), abs=1e-15)

    def test_running_sum_compensates_where_naive_drifts(self):
        # 1 followed by many tiny terms: naive += loses every tiny term.
        acc = RunningSum()
        acc.add(1.0)
        for _ in range(1000):
            acc.add(1e-17)
        naive = 1.0
        for _ in range(1000):
            naive += 1e-17
        assert naive == 1.0  # the drifting behaviour being replaced
        assert acc.value == pytest.approx(1.0 + 1e-14, rel=1e-12)


class TestDPPrimitives:
    def test_dp_extend_matches_subset_vector(self):
        rng = random.Random(5)
        probs = [rng.uniform(0.01, 0.99) for _ in range(40)]
        vector = SubsetProbabilityVector(cap=8)
        for p in probs:
            vector.extend(p)
        batched = np.zeros(8)
        batched[0] = 1.0
        count = dp_extend(batched, np.array(probs))
        assert count == len(probs)
        assert np.array_equal(batched, np.array(vector.values))

    def test_dp_extend_chain_rows_are_prefixes(self):
        rng = random.Random(6)
        probs = np.array([rng.uniform(0.01, 0.99) for _ in range(20)])
        initial = np.zeros(5)
        initial[0] = 1.0
        chain = dp_extend_chain(initial, probs)
        assert chain.shape == (21, 5)
        rolling = initial.copy()
        assert np.array_equal(chain[0], rolling)
        for i, p in enumerate(probs):
            dp_extend(rolling, np.array([p]))
            assert np.array_equal(chain[i + 1], rolling)

    def test_divide_out_inverts_extend(self):
        rng = random.Random(7)
        base = np.zeros(6)
        base[0] = 1.0
        dp_extend(base, np.array([rng.uniform(0.05, 0.9) for _ in range(10)]))
        for q in (0.05, 0.2, 0.45):
            extended = base.copy()
            dp_extend(extended, np.array([q]))
            recovered = np.empty(6)
            dp_divide_out(extended, q, recovered)
            assert recovered == pytest.approx(base, abs=1e-12)


class TestTableColumns:
    def test_from_ranked_and_unit_counts(self):
        table = build_table(
            [0.5, 0.4, 0.3, 0.2, 0.1], rule_groups=[[1, 3], [2, 4]]
        )
        prepared = prepare_ranking(table, TopKQuery(k=2))
        columns = TableColumns.from_ranked(prepared.ranked, prepared.rule_of)
        assert len(columns) == 5
        assert columns.tids == tuple(t.tid for t in prepared.ranked)
        assert columns.probability.dtype == np.float64
        assert columns.rule_index.dtype == np.int64
        assert set(columns.rule_ids) == {"r0", "r1"}
        # t0 is independent; the rest pair off into two rules.
        assert columns.unit_counts() == (1, 2, 2)

    def test_prepared_ranking_caches_columns(self):
        table = build_table([0.9, 0.5, 0.3], rule_groups=[])
        prepared = prepare_ranking(table, TopKQuery(k=2))
        assert prepared.columns is prepared.columns
        assert prepared.columns.tids == ("t0", "t1", "t2")

    def test_ranked_order_matches_python_sort(self):
        rng = random.Random(9)
        tids = [f"t{i:03d}" for i in range(200)]
        scores = [float(rng.randint(0, 40)) for _ in tids]  # heavy ties
        order = ranked_order(np.array(scores), tids)
        vectorized = [tids[i] for i in order]
        expected = [
            tid
            for tid, _ in sorted(
                zip(tids, scores), key=lambda pair: (-pair[1], str(pair[0]))
            )
        ]
        assert vectorized == expected


class TestColumnarScalarParity:
    """The columnar kernel vs the scalar oracle: <= 1e-12, all shapes."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("k", [1, 5, 50])
    @pytest.mark.parametrize("seed,rule_fraction,hot", [
        (101, 0.0, False),   # independent-only
        (202, 0.35, False),  # mixed
        (303, 0.8, False),   # rule-heavy
        (404, 0.6, True),    # hot rules: divide-out unsafe, rebuild path
    ])
    def test_parity_on_random_tables(self, variant, k, seed, rule_fraction, hot):
        table = random_table(seed, 120, rule_fraction=rule_fraction, hot_rules=hot)
        query = TopKQuery(k=k)
        columnar = exact_topk_probabilities(
            table, query, variant=variant, columnar=True
        )
        scalar = exact_topk_probabilities(
            table, query, variant=variant, columnar=False
        )
        assert set(columnar) == set(scalar)
        for tid, value in columnar.items():
            assert abs(value - scalar[tid]) <= 1e-12, tid

    @given(uncertain_tables(max_tuples=12), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_parity_property(self, table, k):
        query = TopKQuery(k=k)
        columnar = exact_topk_probabilities(table, query, columnar=True)
        scalar = exact_topk_probabilities(table, query, columnar=False)
        for tid, value in columnar.items():
            assert abs(value - scalar[tid]) <= 1e-12

    @given(uncertain_tables(max_tuples=9), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_columnar_matches_exact_enumeration(self, table, k):
        query = TopKQuery(k=k)
        columnar = exact_topk_probabilities(table, query, columnar=True)
        truth = naive_topk_probabilities(table, query, exact=True)
        for tid, value in columnar.items():
            assert abs(value - float(truth[tid])) <= 1e-9

    def test_many_members_of_one_hot_rule(self):
        # Ten members summing to exactly 1.0: every member after the
        # first needs its rule-tuple divided back out of a DP whose
        # rule factor is the clamped q = 1.0 — rebuild territory.
        table = build_table(
            [0.1] * 10 + [0.5, 0.4], rule_groups=[list(range(10))]
        )
        query = TopKQuery(k=3)
        columnar = exact_topk_probabilities(table, query, columnar=True)
        scalar = exact_topk_probabilities(table, query, columnar=False)
        for tid in columnar:
            assert abs(columnar[tid] - scalar[tid]) <= 1e-12

    def test_full_scan_answer_shape(self):
        table = random_table(7, 50, rule_fraction=0.4)
        answer = exact_ptk_query(table, TopKQuery(k=5), 0.0)
        assert answer.answers == []
        assert answer.stats.stopped_by == "exhausted"
        assert answer.stats.scan_depth == 50
        assert len(answer.probabilities) == 50
        assert answer.stats.subset_extensions > 0


class TestUlpStraddleRegression:
    """True Pr^k values sitting exactly on the threshold must classify
    exactly — the bug class this PR fixes."""

    def test_short_scan_probability_is_exact(self):
        # After SHORT_SCAN_PREFIX the DP vector's float entries fsum to
        # one ulp below 1 although the true total is exactly 1.  The
        # next tuple has fewer than k units ahead, so its Pr^k is its
        # membership probability *exactly*; with threshold equal to it,
        # membership must not depend on that missing ulp.
        probabilities = SHORT_SCAN_PREFIX + [0.4, 0.9]
        vector = SubsetProbabilityVector(cap=6)
        for p in SHORT_SCAN_PREFIX:
            vector.extend(p)
        assert math.fsum(vector.values.tolist()) < 1.0  # the trap is real
        table = build_table(probabilities, rule_groups=[])
        answer = exact_ptk_query(table, TopKQuery(k=6), 0.4, pruning=False)
        assert answer.probabilities["t4"] == 0.4
        assert "t4" in answer.answer_set

    def test_short_scan_is_exact_in_both_engines(self):
        probabilities = SHORT_SCAN_PREFIX + [0.4, 0.9]
        table = build_table(probabilities, rule_groups=[])
        query = TopKQuery(k=6)
        for columnar in (True, False):
            result = exact_topk_probabilities(table, query, columnar=columnar)
            assert result["t4"] == 0.4
            # every tuple ahead of position k is served the exact 1 * p
            for i, p in enumerate(probabilities[:5]):
                assert result[f"t{i}"] == p

    @given(uncertain_tables(max_tuples=8), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_membership_matches_exact_oracle_on_boundaries(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_topk_probabilities(table, query, exact=True)
        for threshold in (0.25, 0.5):
            answer = exact_ptk_query(table, query, threshold, pruning=False)
            expected = {tid for tid, pr in truth.items() if pr >= threshold}
            assert answer.answer_set == expected


class TestSnapshotColumnServing:
    """Zero-copy recovery: snapshot -> memory-mapped kernel columns."""

    def sample_table(self) -> UncertainTable:
        table = random_table(42, 60, rule_fraction=0.3)
        return table

    def test_columns_are_memory_mapped(self, tmp_path):
        table = self.sample_table()
        path = write_snapshot(table, tmp_path)
        columns = open_snapshot_columns(path)
        assert isinstance(columns.score, np.memmap)
        assert isinstance(columns.probability, np.memmap)
        assert not columns.score.flags.writeable
        assert not columns.probability.flags.writeable
        assert len(columns) == len(table)
        for tid in columns.tids:
            assert columns.probability[columns.tids.index(tid)] == pytest.approx(
                table.probability(tid)
            )

    def test_snapshot_scan_matches_live_engine(self, tmp_path):
        table = self.sample_table()
        path = write_snapshot(table, tmp_path)
        columns = open_snapshot_columns(path)
        for k in (1, 5):
            from_snapshot = columns.topk_probabilities(k)
            live = exact_topk_probabilities(table, TopKQuery(k=k))
            assert set(from_snapshot) == set(live)
            for tid, value in from_snapshot.items():
                assert abs(value - live[tid]) <= 1e-12

    def test_serving_materialises_no_tuples(self, tmp_path, monkeypatch):
        table = self.sample_table()
        path = write_snapshot(table, tmp_path)

        import repro.model.tuples as tuples_module

        def exploding_init(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError(
                "snapshot column serving must not build UncertainTuple objects"
            )

        monkeypatch.setattr(
            tuples_module.UncertainTuple, "__init__", exploding_init
        )
        columns = open_snapshot_columns(path)
        result = columns.topk_probabilities(3)
        assert len(result) == len(columns)

    def test_open_latest_picks_newest_and_skips_corrupt(self, tmp_path):
        table = self.sample_table()
        old = write_snapshot(table, tmp_path)
        table.add("t_new", score=5000.0, probability=0.5)
        newest = write_snapshot(table, tmp_path)
        columns = open_latest_snapshot_columns(tmp_path, table.name)
        assert columns is not None
        assert columns.path == newest
        assert "t_new" in columns.tids
        # Corrupt the newest body: the opener must fall back to the old one.
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        fallback = open_latest_snapshot_columns(tmp_path, table.name)
        assert fallback is not None
        assert fallback.path == old

    def test_open_latest_handles_missing(self, tmp_path):
        assert open_latest_snapshot_columns(tmp_path, "nope") is None
        assert open_latest_snapshot_columns(tmp_path / "absent", "x") is None
