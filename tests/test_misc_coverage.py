"""Odds-and-ends coverage: explicit singleton rules, engine internals."""

import pytest

from repro.core.exact import ExactPTKEngine, ExactVariant
from repro.exceptions import QueryError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery
from tests.conftest import build_table


class TestExplicitSingletonRules:
    def build(self):
        table = UncertainTable()
        table.add("a", 2, 0.5)
        table.add("b", 1, 0.4)
        table.add_rule(GenerationRule(rule_id="solo", tuple_ids=("a",)))
        return table

    def test_singleton_rule_registered_and_found(self):
        table = self.build()
        assert table.rule_of("a").rule_id == "solo"
        # singleton rules do not make tuples dependent
        assert table.is_independent("a")

    def test_rules_partition_includes_explicit_singleton(self):
        table = self.build()
        ids = sorted(str(r.rule_id) for r in table.rules())
        assert "solo" in ids
        covered = sorted(t for r in table.rules() for t in r.tuple_ids)
        assert covered == ["a", "b"]

    def test_queries_unaffected_by_singleton_rule(self):
        from repro.core.exact import exact_topk_probabilities

        table = self.build()
        plain = build_table([0.5, 0.4], rule_groups=[], scores=[2, 1])
        expected = exact_topk_probabilities(plain, TopKQuery(k=1))
        got = exact_topk_probabilities(table, TopKQuery(k=1))
        assert got["a"] == pytest.approx(expected["t0"])
        assert got["b"] == pytest.approx(expected["t1"])

    def test_remove_tuple_with_explicit_singleton_rule(self):
        table = self.build()
        table.remove_tuple("a")
        assert "a" not in table
        table.validate()


class TestEngineDirectUse:
    def test_constructor_validation(self):
        with pytest.raises(QueryError):
            ExactPTKEngine([], {}, {}, k=0, threshold=0.5)
        with pytest.raises(QueryError):
            ExactPTKEngine([], {}, {}, k=1, threshold=-0.1)

    def test_engine_runs_standalone(self):
        table = build_table([0.9, 0.8, 0.2], rule_groups=[])
        ranked = table.ranked_tuples()
        engine = ExactPTKEngine(
            ranked, {}, {}, k=1, threshold=0.5, variant=ExactVariant.RC
        )
        answer = engine.run()
        assert answer.answers == ["t0"]
        assert answer.stats.scan_depth >= 1

    def test_variant_metadata(self):
        assert ExactVariant.RC.value == "RC"
        assert not ExactVariant.RC.shares_prefix
        assert ExactVariant.RC_LR.shares_prefix
        assert ExactVariant("RC+AR") is ExactVariant.RC_AR


class TestRepeatAnswersStable:
    def test_same_query_twice_identical(self):
        table = build_table(
            [0.5, 0.3, 0.6, 0.2, 0.6, 0.4], rule_groups=[[1, 4]]
        )
        from repro.core.exact import exact_ptk_query

        first = exact_ptk_query(table, TopKQuery(k=2), 0.3)
        second = exact_ptk_query(table, TopKQuery(k=2), 0.3)
        assert first.answers == second.answers
        assert first.probabilities == second.probabilities
        assert first.stats.scan_depth == second.stats.scan_depth
