"""Unit tests for the result containers and exception hierarchy."""

import pytest

from repro.core.results import AlgorithmStats, PTKAnswer, TupleProbability
from repro.exceptions import (
    DuplicateTupleError,
    EnumerationLimitError,
    QueryError,
    ReproError,
    RuleConflictError,
    SamplingError,
    UnknownTupleError,
    ValidationError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ValidationError,
            DuplicateTupleError,
            UnknownTupleError,
            RuleConflictError,
            QueryError,
            SamplingError,
            EnumerationLimitError,
        ):
            assert issubclass(exc, ReproError)

    def test_duplicate_is_validation(self):
        assert issubclass(DuplicateTupleError, ValidationError)
        assert issubclass(RuleConflictError, ValidationError)


class TestTupleProbability:
    def test_unpacking(self):
        tid, probability = TupleProbability("a", 0.5)
        assert (tid, probability) == ("a", 0.5)

    def test_frozen(self):
        pair = TupleProbability("a", 0.5)
        with pytest.raises(AttributeError):
            pair.probability = 0.9


class TestAlgorithmStats:
    def test_defaults(self):
        stats = AlgorithmStats()
        assert stats.scan_depth == 0
        assert stats.stopped_by == "exhausted"

    def test_pruned_total(self):
        stats = AlgorithmStats(
            tuples_pruned_membership=3, tuples_pruned_same_rule=2
        )
        assert stats.tuples_pruned == 5


class TestPTKAnswer:
    def make(self):
        answer = PTKAnswer(k=2, threshold=0.4)
        answer.probabilities = {"a": 0.9, "b": 0.5, "c": 0.1}
        answer.answers = ["a", "b"]
        return answer

    def test_answer_set(self):
        assert self.make().answer_set == {"a", "b"}

    def test_contains_len(self):
        answer = self.make()
        assert "a" in answer
        assert "c" not in answer
        assert len(answer) == 2

    def test_probability_of(self):
        answer = self.make()
        assert answer.probability_of("c") == 0.1
        assert answer.probability_of("zz", default=0.25) == 0.25
        with pytest.raises(KeyError):
            answer.probability_of("zz")

    def test_ranked_answers(self):
        pairs = self.make().ranked_answers()
        assert [p.tid for p in pairs] == ["a", "b"]

    def test_ranked_answers_tie_break(self):
        answer = PTKAnswer(k=1, threshold=0.1)
        answer.probabilities = {"z": 0.5, "a": 0.5}
        answer.answers = ["z", "a"]
        assert [p.tid for p in answer.ranked_answers()] == ["a", "z"]
