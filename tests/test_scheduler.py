"""Tests for cost-based batch scheduling and resumable exact scans.

Three layers:

* the scheduler policies themselves (ordering, pre-execution decisions,
  budgets);
* the core resumable-scan machinery (``deadline_seconds`` budgets,
  :class:`~repro.core.exact.ScanCheckpoint`, bit-exact resume parity,
  delta-safe metric publishing);
* the serving layer end to end (mixed-deadline batches under FIFO vs
  cost, pre-execution degradation, deadline-expired accounting,
  per-item latency-model calibration, checkpoint store hygiene).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import obs
from repro.core.exact import ScanCheckpoint, exact_ptk_query
from repro.exceptions import QueryError
from repro.obs import OBS, catalogued
from repro.query.engine import UncertainDB
from repro.query.planner import LatencyModel
from repro.query.topk import TopKQuery
from repro.serve import (
    AdmissionController,
    CostScheduler,
    ExactTask,
    FifoScheduler,
    LoopbackTransport,
    ServeApp,
    ServeClient,
    ServeConfig,
    make_scheduler,
)
from repro.serve.protocol import DeadlineExceededError, QueryRequest, QueryResponse
from repro.serve.server import _Work
from repro.serve import server as server_module
from repro.query.planner import LatencyEstimate

from tests.conftest import build_table


@pytest.fixture(autouse=True)
def _obs_off_after():
    """ServeApp enables observability; restore the quiet default."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.OBS.flight.disable()
    obs.OBS.flight.unconfigure()
    obs.OBS.flight.reset()


def scan_table(n: int = 400, name: str = "served"):
    """A rule-bearing table big enough for multi-millisecond scans."""
    rng = random.Random(11)
    probabilities = [round(0.2 + 0.7 * rng.random(), 3) for _ in range(n)]
    rule_groups = []
    for g in range(min(6, n // 2)):
        i, j = 2 * g, 2 * g + 1
        probabilities[i], probabilities[j] = 0.45, 0.4
        rule_groups.append([i, j])
    return build_table(probabilities, rule_groups, name=name)


def make_db(n: int = 400, name: str = "served") -> UncertainDB:
    db = UncertainDB()
    db.register(scan_table(n=n, name=name))
    return db


def _estimate(seconds: float, depth: int = 10) -> LatencyEstimate:
    return LatencyEstimate(
        depth=depth,
        exact_seconds=seconds,
        sampled_seconds_per_unit=1e-6,
        expected_unit_length=10.0,
    )


def _work(request: QueryRequest, deadline=None) -> _Work:
    now = time.monotonic()
    return _Work(request=request, deadline=deadline, arrived=now)


class PinnedModel(LatencyModel):
    """Constant exact-latency prediction, immune to calibration."""

    def __init__(self, exact_seconds: float) -> None:
        super().__init__()
        self._exact = exact_seconds

    def predict_exact_seconds(self, depth: int) -> float:
        return self._exact

    def observe_exact(self, depth: int, seconds: float) -> None:
        pass


class RecordingModel(LatencyModel):
    """Captures every exact calibration observation."""

    def __init__(self) -> None:
        super().__init__()
        self.exact_observations = []

    def observe_exact(self, depth: int, seconds: float) -> None:
        self.exact_observations.append((depth, seconds))
        super().observe_exact(depth, seconds)


# ----------------------------------------------------------------------
# Scheduler policies
# ----------------------------------------------------------------------
class TestSchedulerPolicies:
    def test_cost_orders_cheapest_first(self):
        tasks = [
            ExactTask(0, _estimate(0.5)),
            ExactTask(1, _estimate(0.01)),
            ExactTask(2, _estimate(0.1)),
        ]
        ordered = CostScheduler().order(tasks)
        assert [t.position for t in ordered] == [1, 2, 0]

    def test_cost_breaks_ties_by_arrival(self):
        tasks = [ExactTask(i, _estimate(0.2)) for i in range(4)]
        ordered = CostScheduler().order(tasks)
        assert [t.position for t in ordered] == [0, 1, 2, 3]

    def test_fifo_preserves_arrival_order(self):
        tasks = [
            ExactTask(0, _estimate(0.5)),
            ExactTask(1, _estimate(0.01)),
        ]
        ordered = FifoScheduler().order(tasks)
        assert [t.position for t in ordered] == [0, 1]

    def test_cost_decisions(self):
        scheduler = CostScheduler()
        assert scheduler.decide(None, 99.0, 0.5) == "run"
        assert scheduler.decide(-0.001, 0.001, 0.5) == "expired"
        assert scheduler.decide(0.0, 0.001, 0.5) == "expired"
        # estimate 30ms does not fit half of the 40ms left
        assert scheduler.decide(0.040, 0.030, 0.5) == "degrade"
        assert scheduler.decide(0.100, 0.030, 0.5) == "run"

    def test_forced_exact_never_degrades(self):
        scheduler = CostScheduler()
        assert scheduler.decide(0.040, 0.030, 0.5, can_degrade=False) == "run"
        # ... but an already-expired deadline still fails fast
        assert (
            scheduler.decide(-1.0, 0.030, 0.5, can_degrade=False) == "expired"
        )

    def test_fifo_is_deadline_blind(self):
        scheduler = FifoScheduler()
        assert scheduler.decide(-5.0, 99.0, 0.5) == "run"
        assert scheduler.budget(0.040, 0.5) is None

    def test_cost_budget_is_safety_fraction(self):
        scheduler = CostScheduler()
        assert scheduler.budget(None, 0.5) is None
        assert scheduler.budget(0.2, 0.5) == pytest.approx(0.1)

    def test_make_scheduler(self):
        assert make_scheduler("fifo").name == "fifo"
        assert make_scheduler("cost").name == "cost"
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("priority")


# ----------------------------------------------------------------------
# Resumable exact scans (core)
# ----------------------------------------------------------------------
class TestResumableScan:
    def _oracle(self, table, k=50, threshold=0.3):
        return exact_ptk_query(table, TopKQuery(k=k), threshold)

    def test_zero_budget_checkpoints_immediately(self):
        table = scan_table()
        answer = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.0
        )
        assert answer.partial
        assert answer.stats.stopped_by == "deadline"
        assert answer.stats.scan_depth == 0
        assert answer.answers == []
        assert answer.checkpoint is not None
        assert answer.checkpoint.depth == 0

    def test_resume_completes_bit_exact(self):
        table = scan_table()
        oracle = self._oracle(table)
        partial = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.002
        )
        assert partial.partial
        resumed = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, resume=partial.checkpoint
        )
        assert resumed.checkpoint is None
        assert not resumed.partial
        assert resumed.answers == oracle.answers
        assert resumed.probabilities == oracle.probabilities  # bit-exact
        assert resumed.stats.scan_depth == oracle.stats.scan_depth
        assert resumed.stats.stopped_by == oracle.stats.stopped_by
        assert resumed.stats.tuples_evaluated == oracle.stats.tuples_evaluated
        assert resumed.stats.subset_extensions == oracle.stats.subset_extensions

    def test_many_tiny_segments_bit_exact(self):
        table = scan_table()
        oracle = self._oracle(table)
        answer = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.001
        )
        segments = 1
        while answer.partial:
            segments += 1
            assert segments < 10_000  # safety rail
            answer = answer.checkpoint.resume(deadline_seconds=0.001)
        assert segments > 1  # the budget really did interrupt the scan
        assert answer.answers == oracle.answers
        assert answer.probabilities == oracle.probabilities
        assert answer.stats.stopped_by == oracle.stats.stopped_by
        assert answer.stats.scan_depth == oracle.stats.scan_depth

    def test_checkpoint_is_single_use(self):
        table = scan_table()
        partial = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.0
        )
        checkpoint = partial.checkpoint
        checkpoint.resume()
        with pytest.raises(QueryError, match="already resumed"):
            checkpoint.resume()

    def test_resume_rejects_mismatched_query(self):
        table = scan_table()
        partial = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.0
        )
        with pytest.raises(QueryError, match="cannot resume"):
            exact_ptk_query(
                table, TopKQuery(k=5), 0.3, resume=partial.checkpoint
            )

    def test_checkpoint_describe_exposes_pruning_state(self):
        table = scan_table()
        partial = exact_ptk_query(
            table, TopKQuery(k=50), 0.3, deadline_seconds=0.002
        )
        info = partial.checkpoint.describe()
        assert info["depth"] == partial.stats.scan_depth
        assert info["k"] == 50
        assert info["variant"] == "RC+LR"
        pruning = info["pruning"]
        assert pruning["k"] == 50
        assert pruning["threshold"] == 0.3
        assert pruning["probability_mass"] >= 0.0
        assert "max_failed_independent" in pruning

    def test_unbudgeted_run_has_no_checkpoint(self):
        table = scan_table()
        answer = self._oracle(table)
        assert answer.checkpoint is None
        assert not answer.partial

    def test_segmented_metrics_match_uninterrupted_run(self):
        """Resumed segments publish deltas: totals equal one clean run."""
        table = scan_table()
        names = (
            "repro_ptk_tuples_scanned_total",
            "repro_ptk_tuples_evaluated_total",
            "repro_ptk_dp_extensions_total",
            "repro_ptk_queries_total",
        )
        with obs.enabled_scope(fresh=True):
            answer = exact_ptk_query(
                table, TopKQuery(k=50), 0.3, deadline_seconds=0.001
            )
            while answer.partial:
                answer = answer.checkpoint.resume(deadline_seconds=0.001)
            segmented = {
                "repro_ptk_tuples_scanned_total": catalogued(
                    "repro_ptk_tuples_scanned_total"
                ).value(),
                "repro_ptk_tuples_evaluated_total": catalogued(
                    "repro_ptk_tuples_evaluated_total"
                ).value(),
                "repro_ptk_dp_extensions_total": catalogued(
                    "repro_ptk_dp_extensions_total"
                ).value(),
                "repro_ptk_queries_total": catalogued(
                    "repro_ptk_queries_total"
                ).value(method="RC+LR"),
                "stops": catalogued("repro_ptk_scan_stops_total").value(
                    reason=answer.stats.stopped_by
                ),
            }
        with obs.enabled_scope(fresh=True):
            clean = exact_ptk_query(table, TopKQuery(k=50), 0.3)
            baseline = {
                "repro_ptk_tuples_scanned_total": catalogued(
                    "repro_ptk_tuples_scanned_total"
                ).value(),
                "repro_ptk_tuples_evaluated_total": catalogued(
                    "repro_ptk_tuples_evaluated_total"
                ).value(),
                "repro_ptk_dp_extensions_total": catalogued(
                    "repro_ptk_dp_extensions_total"
                ).value(),
                "repro_ptk_queries_total": catalogued(
                    "repro_ptk_queries_total"
                ).value(method="RC+LR"),
                "stops": catalogued("repro_ptk_scan_stops_total").value(
                    reason=clean.stats.stopped_by
                ),
            }
        assert segmented == baseline
        assert segmented["stops"] == 1.0


# ----------------------------------------------------------------------
# Planner resume pricing
# ----------------------------------------------------------------------
class TestResumePricing:
    def test_resume_costs_difference_of_squares(self):
        model = LatencyModel(seconds_per_cell=1e-6, floor_seconds=0.0)
        full = model.predict_exact_seconds(100)
        resumed = model.predict_resume_seconds(60, 100)
        assert resumed == pytest.approx(1e-6 * (100**2 - 60**2))
        assert resumed < full

    def test_resume_cost_never_negative(self):
        model = LatencyModel(seconds_per_cell=1e-6, floor_seconds=1e-4)
        assert model.predict_resume_seconds(200, 100) == pytest.approx(1e-4)


# ----------------------------------------------------------------------
# Admission EWMA weighting (satellite)
# ----------------------------------------------------------------------
class TestAdmissionServiceEwma:
    def test_batch_update_compounds_per_request_weight(self):
        controller = AdmissionController()
        prior = controller.stats()["mean_service_ms"] / 1000.0
        controller.observe_service(16 * 0.01, requests=16)
        expected = prior + (1.0 - 0.8**16) * (0.01 - prior)
        assert controller.stats()["mean_service_ms"] == pytest.approx(
            expected * 1000.0, abs=2e-3  # stats() rounds to 3 decimals
        )

    def test_batch_equals_equivalent_sequential_singles(self):
        batched = AdmissionController()
        sequential = AdmissionController()
        batched.observe_service(8 * 0.02, requests=8)
        for _ in range(8):
            sequential.observe_service(0.02, requests=1)
        assert batched.stats()["mean_service_ms"] == pytest.approx(
            sequential.stats()["mean_service_ms"], abs=2e-3
        )

    def test_sixteen_request_batch_converges_faster_than_one(self):
        small = AdmissionController()
        large = AdmissionController()
        small.observe_service(0.01, requests=1)
        large.observe_service(16 * 0.01, requests=16)
        # Both move toward 10ms from the 50ms prior; the 16-request
        # batch must move much further (the old code moved them equally).
        assert (
            large.stats()["mean_service_ms"]
            < small.stats()["mean_service_ms"]
        )


# ----------------------------------------------------------------------
# Serving layer: scheduling end to end
# ----------------------------------------------------------------------
def serve_app(db, **overrides) -> ServeApp:
    defaults = dict(
        window_ms=5.0, max_inflight=2, max_queue=16,
        enable_obs=True, enable_flight=True,
    )
    defaults.update(overrides)
    latency_model = defaults.pop("latency_model", None)
    return ServeApp(db, ServeConfig(**defaults), latency_model=latency_model)


def exact_profiles():
    return [
        p for p in OBS.flight.recent(limit=200)
        if p.get("mode") == "exact"
    ]


class TestMixedDeadlineBatches:
    """One expensive exact query ahead of cheap tight-deadline ones."""

    def _items(self, heavy_k=300, cheap_deadline=0.06):
        now = time.monotonic()
        items = [
            _work(
                QueryRequest(table="served", k=heavy_k, threshold=0.3),
                deadline=None,
            )
        ]
        for _ in range(3):
            items.append(
                _work(
                    QueryRequest(table="served", k=5, threshold=0.3),
                    deadline=now + cheap_deadline,
                )
            )
        return items

    def test_cost_scheduler_runs_no_exact_scan_past_deadline(self):
        db = make_db(n=1000)
        app = serve_app(db, scheduler="cost")
        try:
            results = app._run_batch("served", self._items())
        finally:
            app.shutdown()
        # Every cheap item answered exactly, within its deadline.
        for response in results[1:]:
            assert isinstance(response, QueryResponse)
            assert response.mode == "exact"
            assert not response.partial
        assert isinstance(results[0], QueryResponse)
        # Flight profiles prove no exact execution started after (or ran
        # past) its deadline.
        deadline_profiles = [
            p for p in exact_profiles()
            if p.get("deadline_remaining_ms") is not None
        ]
        assert len(deadline_profiles) == 3
        for profile in deadline_profiles:
            assert profile["deadline_remaining_ms"] > 0
            assert (
                profile["actual_seconds"] * 1000.0
                <= profile["deadline_remaining_ms"]
            )
            assert profile["scheduler"]["policy"] == "cost"
            assert profile["scheduler"]["decision"] == "run"
        # Cheap items were reordered ahead of the expensive scan.
        positions = [
            p["scheduler"]["queue_position"] for p in deadline_profiles
        ]
        assert max(positions) <= 2

    def test_fifo_scheduler_executes_exact_scans_past_deadline(self):
        """The pre-scheduler failure mode, pinned as the FIFO baseline."""
        db = make_db(n=1000)
        app = serve_app(db, scheduler="fifo")
        try:
            results = app._run_batch("served", self._items())
        finally:
            app.shutdown()
        for response in results:
            assert isinstance(response, QueryResponse)
        post_deadline = [
            p for p in exact_profiles()
            if p.get("deadline_remaining_ms") is not None
            and p["deadline_remaining_ms"] < 0
        ]
        # The expensive head-of-line scan burned the cheap items'
        # deadlines, yet FIFO executed their exact scans anyway.
        assert post_deadline, (
            "expected FIFO to execute exact scans past their deadline"
        )
        assert all(
            p["scheduler"]["policy"] == "fifo" for p in post_deadline
        )


class TestPreExecutionDecisions:
    def _slow_exact(self, monkeypatch, seconds: float):
        real = server_module.exact_ptk_query

        def slowed(*args, **kwargs):
            time.sleep(seconds)
            return real(*args, **kwargs)

        monkeypatch.setattr(server_module, "exact_ptk_query", slowed)

    def test_preexec_expiry_fails_fast(self, monkeypatch):
        self._slow_exact(monkeypatch, 0.08)
        db = make_db(n=60)
        app = serve_app(db, latency_model=PinnedModel(0.02))
        now = time.monotonic()
        items = [
            _work(QueryRequest(table="served", k=5, threshold=0.3)),
            _work(
                QueryRequest(table="served", k=5, threshold=0.3),
                deadline=now + 0.05,
            ),
        ]
        try:
            results = app._run_batch("served", items)
        finally:
            app.shutdown()
        assert isinstance(results[0], QueryResponse)
        assert isinstance(results[1], DeadlineExceededError)
        assert "pre-exec" in str(results[1])
        assert (
            catalogued("repro_serve_deadline_expired_total").value(
                stage="pre-exec"
            )
            == 1.0
        )

    def test_preexec_degradation_to_sampler(self, monkeypatch):
        self._slow_exact(monkeypatch, 0.09)
        db = make_db(n=60)
        app = serve_app(db, latency_model=PinnedModel(0.02))
        now = time.monotonic()
        items = [
            _work(QueryRequest(table="served", k=5, threshold=0.3)),
            _work(
                QueryRequest(table="served", k=5, threshold=0.3),
                deadline=now + 0.12,
            ),
        ]
        try:
            results = app._run_batch("served", items)
        finally:
            app.shutdown()
        assert isinstance(results[0], QueryResponse)
        assert results[0].mode == "exact"
        degraded = results[1]
        assert isinstance(degraded, QueryResponse)
        assert degraded.mode == "sampled"
        assert degraded.degraded is True
        assert degraded.scheduler["decision"] == "degrade"
        assert (
            catalogued("repro_serve_degraded_preexec_total").value() == 1.0
        )
        # Pre-execution degradations also count in the plan-level total.
        assert catalogued("repro_serve_degraded_total").value() >= 1.0

    def test_dispatch_expiry_counted(self):
        db = make_db(n=60)
        app = serve_app(db)
        items = [
            _work(
                QueryRequest(table="served", k=5, threshold=0.3),
                deadline=time.monotonic() - 0.01,
            ),
        ]
        try:
            results = app._run_batch("served", items)
        finally:
            app.shutdown()
        assert isinstance(results[0], DeadlineExceededError)
        assert (
            catalogued("repro_serve_deadline_expired_total").value(
                stage="dispatch"
            )
            == 1.0
        )
        profiles = OBS.flight.recent(limit=10)
        assert profiles[0]["outcome"] == "deadline-expired"


class TestPerItemCalibration:
    def test_each_exact_item_observed_with_its_own_depth(self):
        db = make_db(n=400)
        model = RecordingModel()
        app = serve_app(db, latency_model=model)
        items = [
            _work(QueryRequest(table="served", k=2, threshold=0.3)),
            _work(QueryRequest(table="served", k=40, threshold=0.3)),
        ]
        try:
            app._run_batch("served", items)
        finally:
            app.shutdown()
        assert len(model.exact_observations) == 2
        depths = sorted(depth for depth, _ in model.exact_observations)
        # Distinct per-item depths: the old code observed once with the
        # batch max depth and the batch *mean* latency.
        assert depths[0] < depths[1]
        for depth, seconds in model.exact_observations:
            assert depth >= 1
            assert seconds > 0.0


class TestServeResume:
    def test_partial_then_resumed_roundtrip(self):
        db = make_db(n=1000)
        oracle = db.ptk("served", k=300, threshold=0.3)
        app = serve_app(db)
        with LoopbackTransport(app) as transport:
            client = ServeClient(transport)
            first = client.query(
                "served", k=300, threshold=0.3, mode="exact", deadline_ms=60
            )
            assert first["mode"] == "exact"
            assert first.get("partial") is True
            assert first["scheduler"]["decision"] == "run"
            depth = first["scheduler"]["checkpoint_depth"]
            assert depth > 0
            assert app.checkpoint_stats()["parked"] == 1
            second = client.query(
                "served", k=300, threshold=0.3, mode="exact",
                deadline_ms=10_000,
            )
            assert second.get("partial") is None
            assert second["scheduler"]["resumed_from_depth"] == depth
            assert second["answers"] == list(oracle.answers)
            metrics = client.metrics()
        assert app.checkpoint_stats()["parked"] == 0
        for line in metrics.splitlines():
            if line.startswith("repro_serve_resumed_scans_total"):
                assert float(line.split()[-1]) >= 1.0
                break
        else:  # pragma: no cover
            pytest.fail("repro_serve_resumed_scans_total not exported")

    def test_healthz_reports_scheduler_and_checkpoints(self):
        db = make_db(n=60)
        app = serve_app(db)
        with LoopbackTransport(app) as transport:
            client = ServeClient(transport)
            health = client.healthz()
        assert health["scheduler"] == "cost"
        assert health["checkpoints"] == {"parked": 0, "capacity": 64}

    def test_checkpoint_store_is_bounded(self):
        db = make_db(n=60)
        app = serve_app(db, max_checkpoints=4)
        try:
            for i in range(9):
                app._store_checkpoint(
                    ("served", 1, i, 0.3),
                    ScanCheckpoint(engine=object(), depth=i, k=i, threshold=0.3),
                )
            assert app.checkpoint_stats()["parked"] == 4
            # Oldest evicted first; newest still claimable exactly once.
            assert app._take_checkpoint(("served", 1, 0, 0.3)) is None
            taken = app._take_checkpoint(("served", 1, 8, 0.3))
            assert taken is not None and taken.depth == 8
            assert app._take_checkpoint(("served", 1, 8, 0.3)) is None
        finally:
            app.shutdown()


class TestSchedulerProtocolFields:
    def test_scheduler_block_on_ordinary_exact_response(self):
        db = make_db(n=60)
        app = serve_app(db)
        with LoopbackTransport(app) as transport:
            client = ServeClient(transport)
            result = client.query("served", k=5, threshold=0.3)
        assert result["scheduler"]["policy"] == "cost"
        assert result["scheduler"]["queue_position"] == 0
        assert result["scheduler"]["decision"] == "run"
        assert result["scheduler"]["estimated_seconds"] > 0
        assert "partial" not in result

    def test_to_dict_omits_unset_scheduler_fields(self):
        response = QueryResponse(
            table="t", k=2, threshold=0.5, mode="exact"
        )
        body = response.to_dict()
        assert "partial" not in body
        assert "scheduler" not in body

    def test_to_dict_includes_partial_and_scheduler_when_set(self):
        response = QueryResponse(
            table="t", k=2, threshold=0.5, mode="exact",
            partial=True, scheduler={"policy": "cost", "decision": "run"},
        )
        body = response.to_dict()
        assert body["partial"] is True
        assert body["scheduler"] == {"policy": "cost", "decision": "run"}
