"""Tests for the independent-tuple (basic case) exact algorithm."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_case import (
    position_probabilities_independent,
    topk_probabilities_from_probs,
    topk_probabilities_independent,
)
from repro.datagen.sensors import example2_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from repro.semantics.naive import (
    naive_position_probabilities,
    naive_topk_probabilities,
)
from tests.conftest import build_table, uncertain_tables


class TestPaperExample2:
    def test_example2_values(self):
        table = example2_table()
        ranked = table.ranked_tuples()
        result = topk_probabilities_independent(ranked, k=3)
        assert result["t1"] == pytest.approx(0.7)
        assert result["t2"] == pytest.approx(0.2)
        assert result["t3"] == pytest.approx(1.0)
        # Paper: Pr^3(t4) = Pr(t4) * (0 + 0.24 + 0.62) = 0.258
        assert result["t4"] == pytest.approx(0.258)

    def test_first_k_tuples_equal_membership(self):
        # Pr^k(t_i) = Pr(t_i) for i <= k
        table = example2_table()
        ranked = table.ranked_tuples()
        result = topk_probabilities_independent(ranked, k=3)
        for tup in ranked[:3]:
            assert result[tup.tid] == pytest.approx(tup.probability)


class TestValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            topk_probabilities_independent([], 0)
        with pytest.raises(QueryError):
            topk_probabilities_from_probs([0.5], -1)
        with pytest.raises(QueryError):
            position_probabilities_independent([], 0)

    def test_empty_list(self):
        assert topk_probabilities_independent([], 3) == {}


class TestAgainstNaive:
    @given(uncertain_tables(max_tuples=8, allow_rules=False), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_enumeration(self, table, k):
        ranked = table.ranked_tuples()
        fast = topk_probabilities_independent(ranked, k)
        truth = naive_topk_probabilities(table, TopKQuery(k=k))
        for tid, expected in truth.items():
            assert fast[tid] == pytest.approx(expected, abs=1e-9)

    @given(uncertain_tables(max_tuples=7, allow_rules=False), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_position_probabilities_match_enumeration(self, table, k):
        ranked = table.ranked_tuples()
        fast = position_probabilities_independent(ranked, k)
        truth = naive_position_probabilities(table, TopKQuery(k=k))
        for tid, expected in truth.items():
            for j in range(k):
                assert fast[tid][j] == pytest.approx(expected[j], abs=1e-9)


class TestArrayVariant:
    def test_matches_dict_variant(self):
        table = build_table([0.4, 0.6, 0.2, 0.8], rule_groups=[])
        ranked = table.ranked_tuples()
        as_dict = topk_probabilities_independent(ranked, k=2)
        as_array = topk_probabilities_from_probs(
            [t.probability for t in ranked], k=2
        )
        for i, tup in enumerate(ranked):
            assert as_array[i] == pytest.approx(as_dict[tup.tid])


class TestInvariants:
    @given(uncertain_tables(max_tuples=9, allow_rules=False), st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_total_mass_is_expected_topk_size(self, table, k):
        # sum_t Pr^k(t) = E[min(k, |W|)] <= k
        ranked = table.ranked_tuples()
        result = topk_probabilities_independent(ranked, k)
        total = math.fsum(result.values())
        assert total <= k + 1e-9
        if len(ranked) <= k:
            # every tuple present is in the top-k
            assert total == pytest.approx(
                math.fsum(t.probability for t in ranked), abs=1e-9
            )

    @given(uncertain_tables(max_tuples=9, allow_rules=False))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_membership(self, table):
        ranked = table.ranked_tuples()
        result = topk_probabilities_independent(ranked, k=3)
        for tup in ranked:
            assert result[tup.tid] <= tup.probability + 1e-12

    def test_position_probabilities_sum_to_topk_probability(self):
        table = build_table([0.4, 0.6, 0.2, 0.8, 0.5], rule_groups=[])
        ranked = table.ranked_tuples()
        k = 3
        topk = topk_probabilities_independent(ranked, k)
        positions = position_probabilities_independent(ranked, k)
        for tup in ranked:
            assert math.fsum(positions[tup.tid]) == pytest.approx(topk[tup.tid])
