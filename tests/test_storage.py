"""Tests for the paged storage substrate and I/O accounting."""

import pytest

from repro.core.exact import exact_ptk_query
from repro.exceptions import QueryError, UnknownTupleError
from repro.model.tuples import UncertainTuple
from repro.query.topk import TopKQuery
from repro.storage import HeapFile, Page, PagedRankedStream, RankedIndex
from repro.storage.index import ptk_query_over_index
from tests.conftest import build_table


def record(tid, score=1.0):
    return UncertainTuple(tid=tid, score=score, probability=0.5)


class TestPage:
    def test_capacity_enforced(self):
        page = Page(0, capacity=2)
        page.append(record("a"))
        page.append(record("b"))
        assert page.is_full
        with pytest.raises(QueryError):
            page.append(record("c"))

    def test_rejects_bad_capacity(self):
        with pytest.raises(QueryError):
            Page(0, capacity=0)


class TestHeapFile:
    def test_insert_and_fetch(self):
        heap = HeapFile(page_capacity=2)
        heap.insert(record("a", 1))
        heap.insert(record("b", 2))
        heap.insert(record("c", 3))
        assert heap.page_count == 2
        assert len(heap) == 3
        assert heap.fetch("c").score == 3

    def test_fetch_counts_one_page(self):
        heap = HeapFile(page_capacity=2)
        heap.bulk_load([record(f"t{i}", i) for i in range(6)])
        heap.reset_counters()
        heap.fetch("t5")
        assert heap.pages_read == 1

    def test_scan_counts_every_page(self):
        heap = HeapFile(page_capacity=4)
        heap.bulk_load([record(f"t{i}", i) for i in range(10)])
        heap.reset_counters()
        assert len(list(heap.scan())) == 10
        assert heap.pages_read == 3

    def test_duplicate_insert_rejected(self):
        heap = HeapFile()
        heap.insert(record("a"))
        with pytest.raises(QueryError):
            heap.insert(record("a"))

    def test_unknown_fetch(self):
        with pytest.raises(UnknownTupleError):
            HeapFile().fetch("ghost")

    def test_locator_is_free(self):
        heap = HeapFile(page_capacity=2)
        heap.insert(record("a"))
        heap.reset_counters()
        assert heap.locator_of("a") == (0, 0)
        assert heap.pages_read == 0

    def test_bad_page_id(self):
        with pytest.raises(QueryError):
            HeapFile().read_page(0)


class TestRankedIndex:
    def build_index(self, n=20, capacity=4):
        table = build_table([0.5] * n, rule_groups=[])
        return table, RankedIndex(table, page_capacity=capacity)

    def test_pages_hold_ranking_order(self):
        table, index = self.build_index()
        ranked_ids = [t.tid for t in table.ranked_tuples()]
        paged_ids = [
            t.tid for t in index.top_pages(index.page_count)
        ]
        assert paged_ids == ranked_ids

    def test_page_count(self):
        _, index = self.build_index(n=10, capacity=4)
        assert index.page_count == 3
        assert len(index) == 10

    def test_top_pages_counts_reads(self):
        _, index = self.build_index()
        index.reset_counters()
        index.top_pages(2)
        assert index.pages_read == 2


class TestPagedRankedStream:
    def test_stream_yields_ranking_order(self):
        table, index = TestRankedIndex().build_index(n=9, capacity=3)
        stream = PagedRankedStream(index)
        ids = [t.tid for t in stream]
        assert ids == [t.tid for t in table.ranked_tuples()]

    def test_pages_pulled_lazily(self):
        _, index = TestRankedIndex().build_index(n=12, capacity=4)
        index.reset_counters()
        stream = PagedRankedStream(index)
        assert index.pages_read == 0
        for _ in range(4):
            stream.next_tuple()
        assert index.pages_read == 1
        stream.next_tuple()
        assert index.pages_read == 2

    def test_peek_pulls_at_most_one_page(self):
        _, index = TestRankedIndex().build_index(n=8, capacity=4)
        index.reset_counters()
        stream = PagedRankedStream(index)
        stream.peek()
        assert index.pages_read == 1
        stream.peek()
        assert index.pages_read == 1

    def test_exhaustion(self):
        _, index = TestRankedIndex().build_index(n=5, capacity=4)
        stream = PagedRankedStream(index)
        ids = [t.tid for t in stream]
        assert len(ids) == 5
        assert stream.exhausted
        assert stream.next_tuple() is None


class TestPtkOverIndex:
    def test_answers_match_table_engine(self):
        table = build_table(
            [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2], rule_groups=[]
        )
        index = RankedIndex(table, page_capacity=2)
        answer, pages = ptk_query_over_index(index, k=2, threshold=0.3)
        direct = exact_ptk_query(table, TopKQuery(k=2), 0.3)
        assert answer.answer_set == direct.answer_set
        assert pages >= 1

    def test_with_rules(self):
        table = build_table(
            [0.5, 0.4, 0.3, 0.6, 0.2, 0.35], rule_groups=[[1, 4]]
        )
        index = RankedIndex(table, page_capacity=2)
        answer, _ = ptk_query_over_index(
            index, k=2, threshold=0.25, table=table
        )
        direct = exact_ptk_query(table, TopKQuery(k=2), 0.25)
        assert answer.answer_set == direct.answer_set
        assert answer.probabilities == pytest.approx(direct.probabilities)

    def test_pruning_saves_pages(self):
        # near-certain tuples: the scan stops after ~k tuples, so most
        # index pages are never read
        table = build_table([0.95] * 400, rule_groups=[])
        index = RankedIndex(table, page_capacity=8)
        answer, pages = ptk_query_over_index(index, k=5, threshold=0.4)
        assert pages < index.page_count / 3
        assert answer.stats.scan_depth < 100
