"""Property tests: the dynamic index vs cold-recompute oracles.

Three oracles, in increasing strength:

1. the cold columnar scan of the current table (bitwise equality —
   the index's contract);
2. the exact engine's :func:`exact_ptk_query` answer set;
3. at small ``n``, the possible-world enumerator in exact rational
   arithmetic (:func:`naive_topk_probabilities` with ``exact=True``),
   whose ``Fraction >= float`` threshold comparisons are themselves
   exact.

Plus the two hard end-to-end cases: a SIGKILL mid-mutation (recovery
must rebuild state the index then answers identically on) and the
replica applying the shipped WAL (its dynamic answers must equal the
primary's bitwise).
"""

import os
import signal
import subprocess
import sys
import time
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_ptk_query
from repro.dynamic import DynamicIndex, delta_from_record
from repro.exceptions import UnsupportedDeltaError
from repro.model.table import UncertainTable
from repro.query.engine import UncertainDB
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from tests.test_dynamic import MutationDriver, cold_probabilities


def feed(db, table, delta):
    """Mirror UncertainDB._emit_delta for driver-made mutations."""
    db.prepare_cache.refresh(table, delta)
    if db.dynamic is not None:
        db.dynamic.enqueue(delta)

# Mutation scripts are drawn as (op-code, seed) pairs; the driver turns
# them into valid mutations against the evolving table.
OPS = ["add", "remove", "update", "score", "rule"]
mutation_scripts = st.lists(
    st.tuples(st.integers(0, len(OPS) - 1), st.integers(0, 2**16)),
    min_size=1,
    max_size=40,
)


class TestInterleavedMutations:
    @given(script=mutation_scripts, k=st.integers(1, 4),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_every_step_bitwise_equal_to_cold_scan(self, script, k, seed):
        table = UncertainTable(name="t")
        driver = MutationDriver(table, seed=seed)
        driver.seed_tuples(8)
        index = DynamicIndex.build("t", table, cap=k)
        for op_index, op_seed in script:
            driver.rng.seed(op_seed)
            op = OPS[op_index] if len(table) >= 3 else "add"
            delta = driver.emit(op)
            if delta is None:
                continue
            try:
                index.apply(delta)
            except UnsupportedDeltaError:
                index = DynamicIndex.build("t", table, cap=k)
            tids, out = cold_probabilities(table, k)
            assert tuple(index.tids) == tids
            assert np.array_equal(out, index.topk_probabilities(k))

    @given(script=mutation_scripts, k=st.integers(1, 4),
           seed=st.integers(0, 1000), threshold=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_lazy_scan_answer_equals_cold_threshold_set(
        self, script, k, seed, threshold
    ):
        # The prune-bounded lazy path: interleave mutations with
        # scan_answer reads only — never topk_probabilities, so the
        # watermark genuinely lags — and pin the answer set plus the
        # scanned prefix's values to the cold full column at every
        # step.  A final full read checks that the chain of partial
        # rescans composes bitwise into the uninterrupted scan.
        table = UncertainTable(name="t")
        driver = MutationDriver(table, seed=seed)
        driver.seed_tuples(8)
        index = DynamicIndex.build("t", table, cap=k)
        for op_index, op_seed in script:
            driver.rng.seed(op_seed)
            op = OPS[op_index] if len(table) >= 3 else "add"
            delta = driver.emit(op)
            if delta is None:
                continue
            try:
                index.apply(delta)
            except UnsupportedDeltaError:
                index = DynamicIndex.build("t", table, cap=k)
            answers, probabilities, depth = index.scan_answer(k, threshold)
            tids, out = cold_probabilities(table, k)
            expected = [t for i, t in enumerate(tids) if out[i] >= threshold]
            assert answers == expected
            assert depth <= len(tids)
            for position in range(depth):
                assert probabilities[tids[position]] == out[position]
        tids, out = cold_probabilities(table, k)
        assert tuple(index.tids) == tids
        assert np.array_equal(out, index.topk_probabilities(k))

    @given(script=mutation_scripts, k=st.integers(1, 3),
           seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_engine_dynamic_answers_match_fraction_oracle(
        self, script, k, seed
    ):
        # Small n so world enumeration stays cheap; the Fraction oracle
        # decides threshold membership in exact arithmetic.
        db = UncertainDB()
        table = UncertainTable(name="t")
        db.register(table, name="t")
        db.enable_dynamic(cap=4)
        driver = MutationDriver(table, seed=seed)
        for _ in range(5):
            delta = driver.emit("add")
            if delta is not None:
                feed(db, table, delta)
        threshold = 0.3
        for op_index, op_seed in script[:12]:
            driver.rng.seed(op_seed)
            op = OPS[op_index] if len(table) >= 3 else "add"
            delta = driver.emit(op)
            if delta is None:
                continue
            feed(db, table, delta)
            if not len(table):
                continue
            answer = db.ptk("t", k=k, threshold=threshold)
            assert answer.method == "dynamic"
            oracle = naive_topk_probabilities(
                table, TopKQuery(k=k), exact=True
            )
            expected = [
                tup.tid for tup in table.ranked_tuples()
                if oracle[tup.tid] >= Fraction(threshold)
            ]
            # the DP's compensated floats may sit an ulp off the exact
            # rational at the boundary; everything strictly inside the
            # threshold on either side must agree
            for tid in set(answer.answers) ^ set(expected):
                distance = abs(
                    oracle[tid] - Fraction(threshold)
                )
                assert distance < Fraction(1, 10**9), (
                    f"{tid}: Pr^k={float(oracle[tid])} vs "
                    f"threshold {threshold}"
                )

    @given(script=mutation_scripts, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_exact_engine_agreement_after_script(self, script, seed):
        db = UncertainDB()
        table = UncertainTable(name="t")
        db.register(table, name="t")
        db.enable_dynamic(cap=4)
        driver = MutationDriver(table, seed=seed)
        for _ in range(10):
            delta = driver.emit("add")
            if delta is not None:
                feed(db, table, delta)
        for op_index, op_seed in script:
            driver.rng.seed(op_seed)
            op = OPS[op_index] if len(table) >= 3 else "add"
            delta = driver.emit(op)
            if delta is not None:
                feed(db, table, delta)
        answer = db.ptk("t", k=3, threshold=0.25)
        assert answer.method == "dynamic"
        cold = exact_ptk_query(table, TopKQuery(k=3), 0.25)
        assert answer.answers == cold.answers
        for tid in answer.answers:
            assert answer.probabilities[tid] == cold.probabilities[tid]


# ----------------------------------------------------------------------
# Crash recovery: SIGKILL mid-mutation, then dynamic == cold
# ----------------------------------------------------------------------
_KILL_SCRIPT = """
import random
import sys
from repro.durable import DurableDB
from repro.model.table import UncertainTable

db = DurableDB(sys.argv[1], fsync="off")
table = UncertainTable(name="killed")
db.register(table, name="killed")
rng = random.Random(7)
for i in range(40):
    db.add("killed", f"s{i}", float(rng.randint(0, 500)), 0.2 + 0.015 * (i % 40))
print("READY", flush=True)
i = 40
while True:
    roll = rng.random()
    tids = db.table("killed").tuple_ids()
    if roll < 0.5:
        db.add("killed", f"s{i}", float(rng.randint(0, 500)), 0.4)
        i += 1
    elif roll < 0.7:
        db.update_probability("killed", rng.choice(tids), rng.uniform(0.05, 0.9))
    elif roll < 0.9:
        db.update_score("killed", rng.choice(tids), float(rng.randint(0, 500)))
    else:
        db.remove_tuple("killed", rng.choice(tids))
"""


def test_sigkill_recovery_then_dynamic_equals_cold(tmp_path):
    from repro.durable import DurableDB

    process = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(tmp_path)],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        assert process.stdout.readline().strip() == b"READY"
        time.sleep(0.4)
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait()

    db = DurableDB(tmp_path, fsync="off")
    try:
        db.enable_dynamic(cap=8)
        table = db.table("killed")
        table.validate()
        for k in (1, 3, 5):
            answer = db.ptk("killed", k=k, threshold=0.2)
            assert answer.method == "dynamic"
            cold = exact_ptk_query(table, TopKQuery(k=k), 0.2)
            assert answer.answers == cold.answers
            for tid in answer.answers:
                assert answer.probabilities[tid] == cold.probabilities[tid]
        # keep mutating the recovered state: deltas chain on recovery's
        # versions, byte-exactly
        db.update_score("killed", table.tuple_ids()[0], 999.0)
        db.add("killed", "post-crash", 998.0, 0.9)
        answer = db.ptk("killed", k=3, threshold=0.2)
        assert answer.method == "dynamic"
        assert db.dynamic.fallbacks == {}
        cold = exact_ptk_query(table, TopKQuery(k=3), 0.2)
        assert answer.answers == cold.answers
    finally:
        db.close()


# ----------------------------------------------------------------------
# Replica apply: the shipped WAL drives the replica's index to byte
# equality with the primary's
# ----------------------------------------------------------------------
def test_replica_dynamic_answers_equal_primary(tmp_path):
    from repro.durable import DurableDB
    from repro.durable import wal as wal_mod
    from repro.replication.replica import ReplicaApplier

    primary = DurableDB(tmp_path, fsync="off")
    table = UncertainTable(name="shared")
    primary.register(table, name="shared")
    primary.enable_dynamic(cap=6)
    driver = MutationDriver(primary.table("shared"), seed=11, name="shared")
    import random as _random

    rng = _random.Random(3)
    for i in range(30):
        primary.add("shared", f"p{i}", float(rng.randint(0, 200)),
                    0.1 + 0.02 * (i % 40))
    for _ in range(25):
        tids = primary.table("shared").tuple_ids()
        roll = rng.random()
        if roll < 0.4:
            primary.update_probability("shared", rng.choice(tids),
                                       rng.uniform(0.05, 0.9))
        elif roll < 0.7:
            primary.update_score("shared", rng.choice(tids),
                                 float(rng.randint(0, 200)))
        elif roll < 0.85:
            primary.remove_tuple("shared", rng.choice(tids))
        else:
            primary.add("shared", f"x{rng.randint(0, 10**6)}",
                        float(rng.randint(0, 200)), 0.5)
    records, _, _ = wal_mod.replay_wal(primary.data_dir / "wal")

    replica = ReplicaApplier()
    replica.db.enable_dynamic(cap=6)
    registers = [r for r in records if r["op"] == "register"]
    mutations = [r for r in records
                 if r["op"] not in ("register", "serve")]
    replica.apply_batch({"records": registers, "cursor": "0:1"})
    replica.db.ptk("shared", k=3, threshold=0.2)  # build before the stream
    replica.apply_batch({"records": mutations, "cursor": "0:2"})

    primary_answer = primary.ptk("shared", k=3, threshold=0.2)
    replica_answer = replica.db.ptk("shared", k=3, threshold=0.2)
    assert primary_answer.method == replica_answer.method == "dynamic"
    assert replica.db.dynamic.deltas_applied > 0
    assert replica.db.dynamic.fallbacks == {}
    assert replica_answer.answers == primary_answer.answers
    assert replica_answer.probabilities == primary_answer.probabilities
    primary.close()
