"""Failure injection for the persistence layer.

Corrupt files must produce library exceptions (never silent bad data),
and every invariant violation smuggled through a file must be caught by
table validation on read.
"""

import json

import pytest

from repro.exceptions import ReproError, ValidationError
from repro.io.csvio import read_table_csv, write_table_csv
from repro.io.jsonio import read_table_json
from repro.datagen.sensors import panda_table


class TestCorruptJson:
    def write(self, tmp_path, document):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(document))
        return path

    def test_probability_above_one(self, tmp_path):
        path = self.write(
            tmp_path,
            {"name": "t", "tuples": [{"tid": "a", "score": 1, "probability": 1.5}]},
        )
        with pytest.raises(ReproError):
            read_table_json(path)

    def test_zero_probability(self, tmp_path):
        path = self.write(
            tmp_path,
            {"name": "t", "tuples": [{"tid": "a", "score": 1, "probability": 0}]},
        )
        with pytest.raises(ReproError):
            read_table_json(path)

    def test_rule_over_budget(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "name": "t",
                "tuples": [
                    {"tid": "a", "score": 1, "probability": 0.7},
                    {"tid": "b", "score": 2, "probability": 0.7},
                ],
                "rules": [{"rule_id": "r", "members": ["a", "b"]}],
            },
        )
        with pytest.raises(ValidationError):
            read_table_json(path)

    def test_rule_referencing_ghost(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "name": "t",
                "tuples": [{"tid": "a", "score": 1, "probability": 0.5}],
                "rules": [{"rule_id": "r", "members": ["a", "ghost"]}],
            },
        )
        with pytest.raises(ReproError):
            read_table_json(path)

    def test_overlapping_rules(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "name": "t",
                "tuples": [
                    {"tid": "a", "score": 1, "probability": 0.3},
                    {"tid": "b", "score": 2, "probability": 0.3},
                    {"tid": "c", "score": 3, "probability": 0.3},
                ],
                "rules": [
                    {"rule_id": "r1", "members": ["a", "b"]},
                    {"rule_id": "r2", "members": ["b", "c"]},
                ],
            },
        )
        with pytest.raises(ReproError):
            read_table_json(path)

    def test_duplicate_tuple_ids(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "name": "t",
                "tuples": [
                    {"tid": "a", "score": 1, "probability": 0.5},
                    {"tid": "a", "score": 2, "probability": 0.4},
                ],
            },
        )
        with pytest.raises(ReproError):
            read_table_json(path)

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            read_table_json(path)


class TestCorruptCsv:
    def test_tampered_probability_column(self, tmp_path):
        stem = tmp_path / "p"
        write_table_csv(panda_table(), stem)
        tuples_path = tmp_path / "p.tuples.csv"
        content = tuples_path.read_text().replace("0.3", "3.0", 1)
        tuples_path.write_text(content)
        with pytest.raises(ReproError):
            read_table_csv(stem)

    def test_tampered_rule_member(self, tmp_path):
        stem = tmp_path / "p"
        write_table_csv(panda_table(), stem)
        rules_path = tmp_path / "p.rules.csv"
        content = rules_path.read_text().replace("R2", "ZZ", 1)
        rules_path.write_text(content)
        with pytest.raises(ReproError):
            read_table_csv(stem)

    def test_empty_tuples_file(self, tmp_path):
        (tmp_path / "e.tuples.csv").write_text("")
        with pytest.raises(ReproError):
            read_table_csv(tmp_path / "e")

    def test_missing_tuples_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_table_csv(tmp_path / "nothing")
