"""Smoke tests: every example script runs to completion and says what
it promises.  Heavier examples run with reduced workloads where the
script exposes module-level knobs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys, **overrides):
    """Execute an example's main() with optional module-global overrides."""
    namespace = runpy.run_path(str(EXAMPLES / name), run_name="example")
    for key, value in overrides.items():
        namespace[key] = value
    # re-bind the overridden globals into main's module namespace
    main = namespace["main"]
    main.__globals__.update(overrides)
    main()
    return capsys.readouterr().out


class TestQuickstart:
    def test_reproduces_paper_values(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "['R2', 'R3', 'R5']" in out
        assert "0.704" in out  # Table 3's Pr^2(R5)
        assert "12" not in out.split("Possible worlds")[0]  # header sanity
        assert out.count("Pr=") == 12  # twelve possible worlds


class TestSemanticsTour:
    def test_prints_all_semantics(self, capsys):
        out = run_example("semantics_tour.py", capsys)
        assert "PT-5" in out
        assert "U-TopK" in out
        assert "U-KRanks" in out
        assert "Global-Top5" in out


class TestSensorNetwork:
    def test_threshold_sweep_monotone(self, capsys):
        out = run_example("sensor_network.py", capsys)
        assert "precision=" in out
        assert "answers identical" in out


class TestObjectTracking:
    def test_stream_agrees_with_batch(self, capsys):
        # shrink the simulation so the smoke test stays fast
        from repro.datagen.tracking import TrackingConfig

        namespace = runpy.run_path(
            str(EXAMPLES / "object_tracking.py"), run_name="example"
        )
        main = namespace["main"]
        main.__globals__["WINDOW"] = 120

        import repro.datagen.tracking as tracking

        original = tracking.TrackingConfig
        main.__globals__["TrackingConfig"] = (
            lambda **kw: original(n_objects=12, n_ticks=25, seed=8)
        )
        main()
        out = capsys.readouterr().out
        assert "agrees" in out


class TestThresholdAnalysis:
    def test_profiles_and_explanations(self, capsys):
        namespace = runpy.run_path(
            str(EXAMPLES / "threshold_analysis.py"), run_name="example"
        )
        main = namespace["main"]

        from repro.datagen.iceberg import IcebergConfig as RealConfig

        main.__globals__["IcebergConfig"] = (
            lambda **kw: RealConfig(n_tuples=300, n_rules=60)
        )
        main()
        out = capsys.readouterr().out
        assert "Answer-set size vs k" in out


class TestSpeedCameras:
    def test_entity_level_answers(self, capsys):
        namespace = runpy.run_path(
            str(EXAMPLES / "speed_cameras.py"), run_name="example"
        )
        main = namespace["main"]
        main.__globals__["N_VEHICLES"] = 40
        main()
        out = capsys.readouterr().out
        assert "vehicles" in out
        assert "Pr(among the 8 fastest)" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "semantics_tour.py",
        "sensor_network.py",
        "iceberg_monitoring.py",
        "object_tracking.py",
        "threshold_analysis.py",
        "speed_cameras.py",
    ],
)
def test_examples_importable(name):
    # every example parses and exposes a main() without side effects
    namespace = runpy.run_path(str(EXAMPLES / name), run_name="not_main")
    assert callable(namespace["main"])
