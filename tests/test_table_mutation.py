"""Tests for in-place table mutation (remove_tuple / update_probability)."""

import pytest

from repro.core.exact import exact_topk_probabilities
from repro.exceptions import UnknownTupleError, ValidationError
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from tests.conftest import build_table


class TestRemoveTuple:
    def test_remove_independent(self):
        table = build_table([0.5, 0.4, 0.3], rule_groups=[])
        removed = table.remove_tuple("t1")
        assert removed.probability == 0.4
        assert len(table) == 2
        assert "t1" not in table
        table.validate()

    def test_remove_unknown_raises(self):
        table = build_table([0.5], rule_groups=[])
        with pytest.raises(UnknownTupleError):
            table.remove_tuple("ghost")

    def test_remove_rule_member_shrinks_rule(self):
        table = build_table([0.3, 0.3, 0.3, 0.5], rule_groups=[[0, 1, 2]])
        table.remove_tuple("t1")
        rule = table.rule_of("t0")
        assert set(rule.tuple_ids) == {"t0", "t2"}
        table.validate()

    def test_remove_leaves_singleton_independent(self):
        table = build_table([0.3, 0.3, 0.5], rule_groups=[[0, 1]])
        table.remove_tuple("t0")
        assert table.is_independent("t1")
        assert table.multi_rules() == []
        table.validate()

    def test_removal_updates_query_answers(self):
        table = build_table([0.6, 0.5, 0.4], rule_groups=[])
        before = exact_topk_probabilities(table, TopKQuery(k=1))
        assert before["t1"] == pytest.approx(0.5 * 0.4)
        table.remove_tuple("t0")
        after = exact_topk_probabilities(table, TopKQuery(k=1))
        assert after["t1"] == pytest.approx(0.5)
        truth = naive_topk_probabilities(table, TopKQuery(k=1))
        assert after == pytest.approx(truth)

    def test_iteration_order_preserved(self):
        table = build_table([0.5, 0.4, 0.3], rule_groups=[])
        table.remove_tuple("t1")
        assert [t.tid for t in table] == ["t0", "t2"]


class TestUpdateProbability:
    def test_update_independent(self):
        table = build_table([0.5, 0.4], rule_groups=[])
        updated = table.update_probability("t0", 0.9)
        assert updated.probability == 0.9
        assert table.probability("t0") == 0.9

    def test_update_respects_rule_budget(self):
        table = build_table([0.4, 0.5, 0.2], rule_groups=[[0, 1]])
        with pytest.raises(ValidationError):
            table.update_probability("t0", 0.6)
        # unchanged on failure
        assert table.probability("t0") == 0.4

    def test_update_within_rule_budget(self):
        table = build_table([0.4, 0.5, 0.2], rule_groups=[[0, 1]])
        table.update_probability("t0", 0.5)
        assert table.rule_probability(table.rule_of("t0")) == pytest.approx(1.0)
        table.validate()

    def test_update_rejects_illegal_probability(self):
        table = build_table([0.5], rule_groups=[])
        with pytest.raises(ValidationError):
            table.update_probability("t0", 0.0)

    def test_update_changes_query_answers(self):
        table = build_table([0.6, 0.5], rule_groups=[])
        table.update_probability("t0", 0.999)
        probabilities = exact_topk_probabilities(table, TopKQuery(k=1))
        assert probabilities["t1"] == pytest.approx(0.5 * 0.001)
