"""Tests for statistics: bounds, metrics, distribution helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SamplingError
from repro.stats.bounds import (
    chernoff_hoeffding_error_bound,
    chernoff_hoeffding_sample_size,
    hoeffding_absolute_error_bound,
)
from repro.stats.distributions import (
    MIN_PROBABILITY,
    clipped_normal,
    probability_normal,
    rule_size_normal,
)
from repro.stats.metrics import (
    average_relative_error,
    f1_score,
    max_absolute_error,
    precision_recall,
)


class TestChernoffHoeffding:
    def test_theorem6_formula(self):
        # |S| >= 3 ln(2/delta) / eps^2
        expected = math.ceil(3 * math.log(2 / 0.05) / 0.1**2)
        assert chernoff_hoeffding_sample_size(0.1, 0.05) == expected

    def test_smaller_epsilon_needs_more_samples(self):
        assert chernoff_hoeffding_sample_size(
            0.05, 0.05
        ) > chernoff_hoeffding_sample_size(0.1, 0.05)

    def test_smaller_delta_needs_more_samples(self):
        assert chernoff_hoeffding_sample_size(
            0.1, 0.01
        ) > chernoff_hoeffding_sample_size(0.1, 0.1)

    def test_bound_inverts_sample_size(self):
        size = chernoff_hoeffding_sample_size(0.1, 0.05)
        epsilon = chernoff_hoeffding_error_bound(size, 0.05)
        assert epsilon <= 0.1 + 1e-9

    def test_validation(self):
        with pytest.raises(SamplingError):
            chernoff_hoeffding_sample_size(0, 0.05)
        with pytest.raises(SamplingError):
            chernoff_hoeffding_sample_size(0.1, 0)
        with pytest.raises(SamplingError):
            chernoff_hoeffding_sample_size(0.1, 1.0)
        with pytest.raises(SamplingError):
            chernoff_hoeffding_error_bound(0, 0.05)

    def test_hoeffding_absolute(self):
        bound = hoeffding_absolute_error_bound(1000, 0.05)
        assert bound == pytest.approx(math.sqrt(math.log(40) / 2000))
        with pytest.raises(SamplingError):
            hoeffding_absolute_error_bound(-1, 0.05)

    @given(st.integers(10, 100_000), st.floats(0.001, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_error_bound_decreasing_in_size(self, size, delta):
        assert chernoff_hoeffding_error_bound(
            size * 2, delta
        ) < chernoff_hoeffding_error_bound(size, delta)


class TestMetrics:
    def test_precision_recall_basic(self):
        precision, recall = precision_recall({"a", "b", "c"}, {"a", "b", "x"})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_empty_prediction_precision_one(self):
        precision, recall = precision_recall({"a"}, set())
        assert precision == 1.0
        assert recall == 0.0

    def test_empty_truth_recall_one(self):
        precision, recall = precision_recall(set(), {"a"})
        assert precision == 0.0
        assert recall == 1.0

    def test_perfect_match(self):
        assert precision_recall({"a"}, {"a"}) == (1.0, 1.0)

    def test_f1(self):
        assert f1_score({"a"}, {"a"}) == 1.0
        assert f1_score({"a"}, {"b"}) == 0.0

    def test_average_relative_error_matches_paper_formula(self):
        exact = {"a": 0.8, "b": 0.4, "c": 0.1}
        estimated = {"a": 0.72, "b": 0.44}
        # threshold 0.3: only a and b count
        expected = (abs(0.8 - 0.72) / 0.8 + abs(0.4 - 0.44) / 0.4) / 2
        assert average_relative_error(exact, estimated, 0.3) == pytest.approx(
            expected
        )

    def test_average_relative_error_missing_estimates_are_zero(self):
        exact = {"a": 0.5}
        assert average_relative_error(exact, {}, 0.3) == pytest.approx(1.0)

    def test_average_relative_error_no_passing_tuples(self):
        assert average_relative_error({"a": 0.1}, {"a": 0.1}, 0.5) == 0.0

    def test_max_absolute_error(self):
        exact = {"a": 0.5, "b": 0.2}
        estimated = {"a": 0.45}
        assert max_absolute_error(exact, estimated) == pytest.approx(0.2)


class TestDistributions:
    def test_clipped_normal_respects_bounds(self):
        rng = np.random.default_rng(0)
        values = clipped_normal(rng, 0.5, 5.0, 1000, 0.0, 1.0)
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_clipped_normal_mean_preserved_when_wide(self):
        rng = np.random.default_rng(0)
        values = clipped_normal(rng, 0.5, 0.05, 5000, 0.0, 1.0)
        assert values.mean() == pytest.approx(0.5, abs=0.01)

    def test_clipped_normal_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SamplingError):
            clipped_normal(rng, 0, 1, 0, 0, 1)
        with pytest.raises(SamplingError):
            clipped_normal(rng, 0, 1, 5, 2, 1)

    def test_probability_normal_floor(self):
        rng = np.random.default_rng(0)
        values = probability_normal(rng, 0.01, 0.5, 1000)
        assert values.min() >= MIN_PROBABILITY
        assert values.max() <= 1.0

    def test_rule_size_normal_integer_and_min(self):
        rng = np.random.default_rng(0)
        sizes = rule_size_normal(rng, 5, 2, 500)
        assert sizes.dtype.kind == "i"
        assert sizes.min() >= 2

    def test_rule_size_normal_maximum(self):
        rng = np.random.default_rng(0)
        sizes = rule_size_normal(rng, 5, 3, 500, maximum=6)
        assert sizes.max() <= 6
