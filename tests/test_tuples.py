"""Unit tests for the uncertain tuple model."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.model.tuples import (
    PROBABILITY_ATOL,
    UncertainTuple,
    validate_probability,
)


class TestValidateProbability:
    def test_accepts_interior_values(self):
        assert validate_probability(0.5) == 0.5

    def test_accepts_one(self):
        assert validate_probability(1.0) == 1.0

    def test_clamps_tiny_overshoot(self):
        assert validate_probability(1.0 + PROBABILITY_ATOL / 2) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            validate_probability(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            validate_probability(-0.1)

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            validate_probability(1.01)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            validate_probability(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ValidationError):
            validate_probability(float("inf"))

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            validate_probability(True)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            validate_probability("0.5")

    def test_error_message_names_subject(self):
        with pytest.raises(ValidationError, match="Pr\\(t9\\)"):
            validate_probability(2.0, what="Pr(t9)")


class TestUncertainTuple:
    def test_basic_construction(self):
        tup = UncertainTuple(tid="a", score=10.0, probability=0.4)
        assert tup.tid == "a"
        assert tup.score == 10.0
        assert tup.probability == 0.4
        assert tup.attributes == {}

    def test_attributes_carried(self):
        tup = UncertainTuple(
            tid="a", score=1.0, probability=0.5, attributes={"loc": "B"}
        )
        assert tup.attributes["loc"] == "B"

    def test_integer_score_allowed(self):
        tup = UncertainTuple(tid="a", score=7, probability=0.5)
        assert tup.score == 7

    def test_rejects_nan_score(self):
        with pytest.raises(ValidationError):
            UncertainTuple(tid="a", score=math.nan, probability=0.5)

    def test_rejects_non_numeric_score(self):
        with pytest.raises(ValidationError):
            UncertainTuple(tid="a", score="high", probability=0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            UncertainTuple(tid="a", score=1.0, probability=0.0)

    def test_frozen(self):
        tup = UncertainTuple(tid="a", score=1.0, probability=0.5)
        with pytest.raises(AttributeError):
            tup.probability = 0.9

    def test_with_probability_returns_copy(self):
        tup = UncertainTuple(
            tid="a", score=1.0, probability=0.5, attributes={"x": 1}
        )
        other = tup.with_probability(0.25)
        assert other.probability == 0.25
        assert other.tid == tup.tid
        assert other.score == tup.score
        assert other.attributes == tup.attributes
        assert tup.probability == 0.5  # original untouched

    def test_equality_is_structural(self):
        a = UncertainTuple(tid="a", score=1.0, probability=0.5)
        b = UncertainTuple(tid="a", score=1.0, probability=0.5)
        assert a == b

    def test_probability_overshoot_clamped_on_construction(self):
        tup = UncertainTuple(
            tid="a", score=1.0, probability=1.0 + PROBABILITY_ATOL / 10
        )
        assert tup.probability == 1.0
