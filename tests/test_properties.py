"""Cross-cutting property tests: global invariants of the whole system.

These tests exercise relationships *between* subsystems — exact vs
sampling vs profiles vs semantics — on randomly generated
rule-constrained tables, beyond the per-module properties tested
elsewhere.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_ptk_query, exact_topk_probabilities
from repro.core.profile import topk_probability_profile
from repro.core.rule_compression import rule_index_of_table
from repro.core.sampling import WorldSampler
from repro.model.table import UncertainTable
from repro.model.worlds import enumerate_possible_worlds
from repro.query.topk import TopKQuery
from repro.semantics.naive import (
    naive_topk_probabilities,
    naive_topk_vector_probabilities,
)
from repro.semantics.ukranks import ukranks_query
from repro.semantics.utopk import utopk_query
from tests.conftest import build_table, uncertain_tables


class TestRankingInvariance:
    @given(uncertain_tables(max_tuples=9), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_monotone_score_transform_preserves_probabilities(self, table, k):
        # Pr^k depends only on the ranking *order*, not on score values
        query = TopKQuery(k=k)
        original = exact_topk_probabilities(table, query)
        transformed = UncertainTable(name="transformed")
        for tup in table:
            transformed.add_tuple(
                tup.__class__(
                    tid=tup.tid,
                    score=math.exp(tup.score / 100.0),  # strictly monotone
                    probability=tup.probability,
                    attributes=tup.attributes,
                )
            )
        for rule in table.multi_rules():
            transformed.add_rule(rule)
        after = exact_topk_probabilities(transformed, query)
        for tid, probability in original.items():
            assert after[tid] == pytest.approx(probability, abs=1e-9)


class TestRuleDegeneracy:
    @given(uncertain_tables(max_tuples=8, allow_rules=False), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_singleton_rules_equal_independence(self, table, k):
        # wrapping every tuple in an explicit singleton rule is a no-op
        wrapped = UncertainTable(name="wrapped")
        for tup in table:
            wrapped.add_tuple(tup)
        for i, tup in enumerate(table):
            wrapped.add_exclusive(f"single{i}", tup.tid)
        query = TopKQuery(k=k)
        assert exact_topk_probabilities(
            wrapped, query
        ) == exact_topk_probabilities(table, query)

    def test_certain_rule_behaves_like_certain_choice(self):
        # a rule with total probability 1 always contributes one tuple
        table = build_table([0.6, 0.4, 0.5], rule_groups=[[0, 1]])
        probabilities = exact_topk_probabilities(table, TopKQuery(k=1))
        # rank order: t0, t1, t2.  t0 wins when chosen (0.6); t1 wins
        # when chosen (0.4); t2 never wins.
        assert probabilities["t0"] == pytest.approx(0.6)
        assert probabilities["t1"] == pytest.approx(0.4)
        assert probabilities["t2"] == pytest.approx(0.0)


class TestCrossSemanticsConsistency:
    @given(uncertain_tables(max_tuples=8), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_utopk_vector_probability_bounded_by_member_topk(self, table, k):
        # Pr(vector is THE top-k) <= Pr(member in top-k) for each member
        query = TopKQuery(k=k)
        answer = utopk_query(table, query)
        probabilities = naive_topk_probabilities(table, query)
        for tid in answer.vector:
            assert answer.probability <= probabilities[tid] + 1e-9

    @given(uncertain_tables(max_tuples=8), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_ukranks_rank1_winner_matches_vector_semantics(self, table, k):
        # rank-1 probability of t = total probability of vectors led by t
        query = TopKQuery(k=k)
        vectors = naive_topk_vector_probabilities(table, query)
        ukranks = ukranks_query(table, query)
        rank1_tid, rank1_probability = ukranks.winners[0]
        led_by = {}
        for vector, probability in vectors.items():
            if vector:
                led_by[vector[0]] = led_by.get(vector[0], 0.0) + probability
        if led_by:
            best = max(led_by.values())
            assert rank1_probability == pytest.approx(best, abs=1e-9)


class TestProfileConsistency:
    @given(uncertain_tables(max_tuples=8), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_profile_final_column_is_prk(self, table, k):
        query = TopKQuery(k=k)
        profiles = topk_probability_profile(table, query)
        exact = exact_topk_probabilities(table, query)
        for tid, probability in exact.items():
            assert profiles[tid][-1] == pytest.approx(probability, abs=1e-9)


class TestSamplerDistribution:
    @given(uncertain_tables(max_tuples=6))
    @settings(max_examples=8, deadline=None)
    def test_inclusion_marginals_match_membership(self, table):
        # the sampler's per-tuple inclusion frequency is the membership
        # probability (law of large numbers with a generous tolerance)
        ranked = table.ranked_tuples()
        sampler = WorldSampler(
            ranked, rule_index_of_table(table), k=len(ranked), lazy=False
        )
        rng = np.random.default_rng(7)
        n = 4000
        counts = {t.tid: 0 for t in ranked}
        for _ in range(n):
            include = sampler.sample_inclusion_mask(rng)
            for position in np.flatnonzero(include):
                counts[ranked[position].tid] += 1
        for tup in ranked:
            assert counts[tup.tid] / n == pytest.approx(
                tup.probability, abs=0.035
            )

    def test_world_frequencies_match_enumeration(self):
        # joint distribution check on a table with rules
        table = build_table([0.4, 0.3, 0.5], rule_groups=[[0, 1]])
        ranked = table.ranked_tuples()
        sampler = WorldSampler(
            ranked, rule_index_of_table(table), k=3, lazy=False
        )
        rng = np.random.default_rng(3)
        n = 40_000
        frequencies: dict = {}
        for _ in range(n):
            include = sampler.sample_inclusion_mask(rng)
            key = frozenset(
                ranked[position].tid for position in np.flatnonzero(include)
            )
            frequencies[key] = frequencies.get(key, 0) + 1
        for world in enumerate_possible_worlds(table):
            observed = frequencies.get(world.tuple_ids, 0) / n
            assert observed == pytest.approx(world.probability, abs=0.01)


class TestEngineRobustness:
    @given(uncertain_tables(max_tuples=10), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_stop_check_interval_does_not_change_answers(self, table, k):
        query = TopKQuery(k=k)
        fine = exact_ptk_query(table, query, 0.35, stop_check_interval=1)
        coarse = exact_ptk_query(table, query, 0.35, stop_check_interval=1000)
        assert fine.answer_set == coarse.answer_set

    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=20, deadline=None)
    def test_threshold_monotonicity_of_answer_sets(self, table):
        query = TopKQuery(k=3)
        loose = exact_ptk_query(table, query, 0.2)
        tight = exact_ptk_query(table, query, 0.6)
        assert tight.answer_set <= loose.answer_set
