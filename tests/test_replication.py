"""Tests for the replication subsystem (repro.replication).

Covers the streaming WAL reader (cursor encode/decode, bounded batch
reads, torn-tail semantics, the randomized bit-exact-resume property,
live tail-follow under concurrent appends), retention pinning against
compaction, the replica applier (byte-identical PT-k answers at equal
table versions, idempotent re-application, durable restart), the
polling follower end-to-end over the loopback transport (staleness
headers and ``max_staleness_s`` rejection, primary-only routes), and
failover promotion with epoch fencing.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.exact import exact_ptk_query
from repro.durable import (
    DurableDB,
    WalCursor,
    WriteAheadLog,
    count_records_from,
    follow,
    pending_bytes_from,
    read_from,
    recover_state,
    replay_wal,
)
from repro.durable.recover import apply_record
from repro.durable.wal import MAGIC
from repro.exceptions import (
    CursorLostError,
    RecoveryError,
    ReplicationError,
)
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery
from repro.replication import (
    ReplicaApplier,
    ReplicationFollower,
    ReplicationServer,
    promote_data_dir,
)
from repro.serve.client import LoopbackTransport, ServeClient, ServeClientError
from repro.serve.server import ServeApp, ServeConfig


def sample_table(name: str = "t", n: int = 30) -> UncertainTable:
    table = UncertainTable(name=name)
    for i in range(n):
        table.add(f"t{i}", 100.0 - i, 0.2 + (i % 6) * 0.05, bucket=i % 3)
    table.add_exclusive("r1", "t0", "t5")
    table.add_exclusive("r2", "t3", "t6", "t12")
    return table


def make_primary(tmp_path: Path, **wal_kw) -> DurableDB:
    db = DurableDB(tmp_path / "primary", fsync="off", **wal_kw)
    db.register(sample_table())
    return db


def ptk_bytes(db, name: str, k: int = 5, threshold: float = 0.3) -> bytes:
    """The byte-exact PT-k result of an engine (answers + probabilities)."""
    answer = exact_ptk_query(db.table(name), TopKQuery(k=k), threshold)
    return json.dumps(
        {
            "answers": [str(t) for t in answer.answers],
            "probabilities": {
                str(t): answer.probabilities[t] for t in answer.answers
            },
        },
        sort_keys=True,
    ).encode()


# ----------------------------------------------------------------------
# WalCursor
# ----------------------------------------------------------------------
class TestWalCursor:
    def test_encode_decode_round_trip(self):
        for cursor in [WalCursor(), WalCursor(3, 8), WalCursor(10**7, 2**31)]:
            assert WalCursor.decode(cursor.encode()) == cursor

    def test_ordering_matches_stream_order(self):
        assert WalCursor(1, 500) < WalCursor(2, 8) < WalCursor(2, 9)

    @pytest.mark.parametrize(
        "text", ["", "abc", "1:", ":4", "1:2:3", "-1:0", "0:-5", "1.5:0"]
    )
    def test_malformed_cursors_rejected(self, text):
        with pytest.raises(ReplicationError):
            WalCursor.decode(text)

    def test_zero_cursor(self):
        assert WalCursor().is_zero
        assert not WalCursor(0, 8).is_zero


# ----------------------------------------------------------------------
# read_from / count / pending
# ----------------------------------------------------------------------
class TestReadFrom:
    def fill(self, directory, n=12, rotate_every=None, pad=24):
        wal = WriteAheadLog(directory, fsync="off")
        records = []
        for i in range(n):
            record = {"op": "add", "version": i, "pad": "x" * pad}
            wal.append(record)
            records.append(record)
            if rotate_every and (i + 1) % rotate_every == 0:
                wal.rotate()
        wal.close()
        return records

    def test_empty_directory(self, tmp_path):
        batch = read_from(tmp_path)
        assert batch.records == [] and batch.caught_up

    def test_nonzero_cursor_on_empty_directory_is_lost(self, tmp_path):
        with pytest.raises(CursorLostError):
            read_from(tmp_path, WalCursor(3, 8))

    def test_full_read_matches_replay(self, tmp_path):
        records = self.fill(tmp_path, rotate_every=4)
        batch = read_from(tmp_path)
        assert batch.records == records
        assert batch.caught_up
        replayed, _, _ = replay_wal(tmp_path)
        assert batch.records == replayed

    def test_every_boundary_resumes_bit_exact(self, tmp_path):
        records = self.fill(tmp_path, rotate_every=5)
        batch = read_from(tmp_path)
        for i, boundary in enumerate(batch.boundaries):
            suffix = read_from(tmp_path, boundary)
            assert suffix.records == records[i + 1 :]

    def test_limits_pause_without_losing_records(self, tmp_path):
        records = self.fill(tmp_path, rotate_every=3)
        seen, cursor = [], WalCursor()
        for _ in range(100):
            batch = read_from(tmp_path, cursor, max_records=1)
            seen.extend(batch.records)
            cursor = batch.cursor
            if batch.caught_up and not batch.records:
                break
        assert seen == records

    def test_torn_live_tail_stops_cleanly(self, tmp_path):
        records = self.fill(tmp_path)
        path = WriteAheadLog.segment_paths(tmp_path)[-1]
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # torn mid-record, still in flight
        batch = read_from(tmp_path)
        assert batch.records == records[:-1]
        assert batch.caught_up
        assert batch.pending_bytes > 0  # the torn bytes still count as lag

    def test_torn_sealed_tail_is_skipped(self, tmp_path):
        records = self.fill(tmp_path, n=10, rotate_every=5)
        first = WriteAheadLog.segment_paths(tmp_path)[0]
        data = first.read_bytes()
        first.write_bytes(data[:-5])  # frozen crash signature
        batch = read_from(tmp_path)
        assert batch.records == records[:4] + records[5:]
        assert batch.caught_up

    def test_compacted_cursor_is_lost(self, tmp_path):
        self.fill(tmp_path, rotate_every=4)
        wal = WriteAheadLog(tmp_path, fsync="off")
        survivor = wal.path
        wal.drop_segments_before(survivor)
        wal.close()
        with pytest.raises(CursorLostError):
            read_from(tmp_path, WalCursor(1, 8))

    def test_count_and_pending_from_cursor(self, tmp_path):
        records = self.fill(tmp_path, rotate_every=4)
        assert count_records_from(tmp_path) == len(records)
        batch = read_from(tmp_path, max_records=5)
        assert count_records_from(tmp_path, batch.cursor) == len(records) - 5
        assert pending_bytes_from(tmp_path, batch.cursor) > 0
        done = read_from(tmp_path, batch.cursor)
        assert pending_bytes_from(tmp_path, done.cursor) == 0


# ----------------------------------------------------------------------
# Randomized properties: torn cuts and live tail-follow
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_stream_reader_property_torn_cuts(tmp_path, seed):
    """For random WALs with a random torn cut, the streamed records must
    equal recovery's replay (the oracle), batch boundaries must resume
    bit-exactly, and no partial record may ever surface."""
    rng = random.Random(seed)
    wal = WriteAheadLog(tmp_path, fsync="off")
    for i in range(rng.randint(5, 40)):
        wal.append(
            {"op": "add", "version": i, "pad": "y" * rng.randint(0, 120)}
        )
        if rng.random() < 0.2:
            wal.rotate()
    wal.close()

    paths = WriteAheadLog.segment_paths(tmp_path)
    victim = rng.choice(paths)
    data = victim.read_bytes()
    if len(data) > len(MAGIC) and rng.random() < 0.8:
        # Cut anywhere past the magic — possibly mid-header, mid-payload,
        # or mid-CRC; possibly at a segment boundary (the victim may be
        # sealed, with newer segments after it).
        victim.write_bytes(data[: rng.randint(len(MAGIC), len(data) - 1)])

    oracle, _, _ = replay_wal(tmp_path)

    streamed, boundaries, cursor = [], [], WalCursor()
    while True:
        batch = read_from(
            tmp_path, cursor, max_records=rng.randint(1, 7)
        )
        streamed.extend(batch.records)
        boundaries.extend(batch.boundaries)
        cursor = batch.cursor
        if batch.caught_up and not batch.records:
            break
    assert streamed == oracle

    for index in rng.sample(range(len(boundaries)), min(5, len(boundaries))):
        suffix = read_from(tmp_path, boundaries[index])
        assert suffix.records == oracle[index + 1 :]


@pytest.mark.parametrize("seed", range(4))
def test_follow_live_tail_under_concurrent_appends(tmp_path, seed):
    """The tail-follower must deliver every record exactly once, in
    order, while a writer races it with appends and size rotations."""
    rng = random.Random(100 + seed)
    total = 60
    done = threading.Event()

    def writer():
        wal = WriteAheadLog(
            tmp_path, fsync="off", max_segment_bytes=rng.randint(128, 512)
        )
        for i in range(total):
            wal.append(
                {"op": "add", "version": i, "pad": "z" * rng.randint(0, 90)}
            )
            if rng.random() < 0.1:
                time.sleep(0.001)
        wal.close()
        done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    received = []
    for record, boundary in follow(
        tmp_path,
        poll_interval=0.005,
        stop=done.is_set,
        max_records=rng.randint(1, 9),
    ):
        received.append((record, boundary))
    thread.join()

    assert [r["version"] for r, _ in received] == list(range(total))
    # Every yielded boundary is a valid bit-exact resume point.
    for index in rng.sample(range(total), 6):
        suffix = read_from(tmp_path, received[index][1])
        assert [r["version"] for r in suffix.records] == list(
            range(index + 1, total)
        )


# ----------------------------------------------------------------------
# Retention pinning vs compaction
# ----------------------------------------------------------------------
class TestRetentionPins:
    def test_pin_blocks_drop_and_unpin_releases(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"op": "add", "version": 1})
        first = wal.sequence
        wal.rotate()
        wal.rotate()
        wal.pin_segments("replica:r1", first)
        assert wal.drop_segments_before(wal.path) == 0
        assert len(WriteAheadLog.segment_paths(tmp_path)) == 3
        wal.unpin_segments("replica:r1")
        assert wal.drop_segments_before(wal.path) == 2
        wal.close()

    def test_replica_survives_compaction_while_behind(self, tmp_path):
        """The acceptance test: snapshots compact the WAL *while* a slow
        replica is mid-stream, and the pin keeps every segment it still
        needs — the replica finishes without a lost cursor."""
        db = make_primary(tmp_path, max_segment_bytes=512)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        for i in range(40):
            db.add("t", f"n{i}", score=200.0 + i, probability=0.6)

        fetches = 0
        while True:
            payload = server.handle_fetch(
                applier.replica_id, applier.cursor.encode(), max_records=3
            )
            applier.apply_batch(payload)
            fetches += 1
            # Compaction runs between every fetch; the replica's pin must
            # keep its cursor segment alive.
            db.snapshot()
            if payload["caught_up"] and not payload["records"]:
                break
            assert fetches < 200, "replica never caught up"
        assert applier.db.table("t").version == db.table("t").version
        assert ptk_bytes(applier.db, "t") == ptk_bytes(db, "t")
        db.close()

    def test_forgotten_replica_loses_cursor_and_rebootstraps(self, tmp_path):
        db = make_primary(tmp_path, max_segment_bytes=256)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        for i in range(30):
            db.add("t", f"n{i}", score=300.0 + i, probability=0.5)
        server.forget(applier.replica_id)
        db.snapshot()  # unpinned: sealed segments compact away
        with pytest.raises(CursorLostError):
            server.handle_fetch(
                applier.replica_id, applier.cursor.encode()
            )
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        payload = server.handle_fetch(
            applier.replica_id, applier.cursor.encode()
        )
        applier.apply_batch(payload)
        assert ptk_bytes(applier.db, "t") == ptk_bytes(db, "t")
        db.close()

    def test_status_reports_replica_lag(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        for i in range(10):
            db.add("t", f"n{i}", score=400.0 + i, probability=0.5)
        status = server.status()
        replica = status["replicas"][applier.replica_id]
        assert replica["lag_records"] == 10
        payload = server.handle_fetch(
            applier.replica_id, applier.cursor.encode()
        )
        applier.apply_batch(payload)
        status = server.status()
        replica = status["replicas"][applier.replica_id]
        assert replica["lag_records"] == 0 and replica["caught_up"]
        db.close()


# ----------------------------------------------------------------------
# ReplicaApplier
# ----------------------------------------------------------------------
class TestReplicaApplier:
    def test_byte_identical_answers_at_equal_versions(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        db.add("t", "late", score=500.0, probability=0.5)
        db.update_probability("t", "t2", 0.9)
        db.remove_tuple("t", "t9")
        db.add_exclusive("t", "r-new", "t1", "late")
        applier.apply_batch(
            server.handle_fetch(applier.replica_id, applier.cursor.encode())
        )
        assert applier.db.table("t").version == db.table("t").version
        for k, p in [(1, 0.2), (5, 0.3), (10, 0.5)]:
            assert ptk_bytes(applier.db, "t", k, p) == ptk_bytes(db, "t", k, p)
        db.close()

    def test_reapplying_a_batch_is_idempotent(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        db.add("t", "x", score=1.0, probability=0.5)
        payload = server.handle_fetch(
            applier.replica_id, applier.cursor.encode()
        )
        assert applier.apply_batch(payload) == 1
        version = applier.db.table("t").version
        assert applier.apply_batch(payload) == 0  # version-gated skip
        assert applier.db.table("t").version == version
        db.close()

    def test_version_gap_raises_for_rebootstrap(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        applier = ReplicaApplier()
        applier.bootstrap(server.handle_bootstrap(applier.replica_id))
        version = db.table("t").version
        gap = {
            "records": [
                {
                    "op": "add",
                    "table": "t",
                    "version": version + 10,
                    "tid": "gap",
                    "score": 1.0,
                    "probability": 0.5,
                    "attributes": {},
                }
            ],
            "cursor": server.end_cursor().encode(),
        }
        with pytest.raises(RecoveryError):
            applier.apply_batch(gap)
        db.close()

    def test_durable_replica_restarts_from_marker(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        replica_dir = tmp_path / "replica"
        applier = ReplicaApplier(replica_dir, replica_id="r1")
        applier.bootstrap(server.handle_bootstrap("r1"))
        db.add("t", "x", score=1.0, probability=0.5)
        applier.apply_batch(server.handle_fetch("r1", applier.cursor.encode()))
        cursor = applier.cursor
        applier.close()

        reborn = ReplicaApplier(replica_dir)
        assert reborn.replica_id == "r1"  # identity persisted
        assert reborn.cursor == cursor
        assert reborn.db.table("t").version == db.table("t").version
        assert ptk_bytes(reborn.db, "t") == ptk_bytes(db, "t")
        reborn.close()
        db.close()

    def test_staleness_unbounded_before_first_sync(self):
        applier = ReplicaApplier()
        assert applier.staleness_seconds() is None
        assert applier.staleness()["staleness_seconds"] is None


# ----------------------------------------------------------------------
# Follower + serve layer end-to-end (loopback)
# ----------------------------------------------------------------------
def _loopback_pair(tmp_path):
    db = make_primary(tmp_path, max_segment_bytes=2048)
    papp = ServeApp(
        db, ServeConfig(window_ms=0), replication=ReplicationServer(db)
    )
    ptransport = LoopbackTransport(papp)
    applier = ReplicaApplier(replica_id="r1")
    follower = ReplicationFollower(
        applier, ServeClient(LoopbackTransport(papp)), poll_interval=0.02
    )
    follower.start()
    assert follower.wait_caught_up(20)
    rapp = ServeApp(applier.db, ServeConfig(window_ms=0), replication=applier)
    rtransport = LoopbackTransport(rapp)
    return db, ptransport, applier, follower, rtransport


class TestFollowerEndToEnd:
    def test_replicated_reads_and_staleness_protocol(self, tmp_path):
        db, ptr, applier, follower, rtr = _loopback_pair(tmp_path)
        primary, replica = ServeClient(ptr), ServeClient(rtr)
        try:
            written = primary.mutate(
                {
                    "op": "add",
                    "table": "t",
                    "tid": "live",
                    "score": 999.0,
                    "probability": 0.95,
                }
            )
            deadline = time.time() + 20
            while time.time() < deadline:
                if (
                    applier.caught_up
                    and applier.db.table("t").version >= written["version"]
                ):
                    break
                time.sleep(0.01)
            pq = primary.query("t", k=5, threshold=0.3, mode="exact")
            rq = replica.query(
                "t", k=5, threshold=0.3, mode="exact", max_staleness_s=30
            )
            assert pq["answers"] == rq["answers"]
            assert pq["probabilities"] == rq["probabilities"]
            assert rq["staleness"]["caught_up"]
            assert rq["staleness"]["staleness_seconds"] is not None

            health = replica.healthz()
            assert health["tables"] == 1  # count, unchanged shape
            meta = health["table_versions"]["t"]
            assert meta["version"] == written["version"]
            assert health["replication"]["role"] == "replica"
            assert primary.healthz()["replication"]["replicas"]
            assert replica.tables()[0]["epoch"] == meta["epoch"]

            # Staleness bound of zero: the replica cannot prove it is
            # that fresh, so the read is rejected 503 + Retry-After.
            follower.stop()
            time.sleep(0.05)
            with pytest.raises(ServeClientError) as rejected:
                replica.query("t", k=3, threshold=0.3, max_staleness_s=0.0)
            assert rejected.value.status == 503
            assert rejected.value.body["error"] == "stale-read"
            assert "staleness" in rejected.value.body
            # Unbounded requests still answer on the stale replica.
            assert replica.query("t", k=3, threshold=0.3)["answers"]
        finally:
            follower.stop()
            rtr.close()
            ptr.close()
            db.close()

    def test_primary_only_routes_and_lost_cursors(self, tmp_path):
        db, ptr, applier, follower, rtr = _loopback_pair(tmp_path)
        primary, replica = ServeClient(ptr), ServeClient(rtr)
        try:
            with pytest.raises(ServeClientError) as denied:
                replica.mutate(
                    {
                        "op": "add",
                        "table": "t",
                        "tid": "w",
                        "score": 1.0,
                        "probability": 0.5,
                    }
                )
            assert denied.value.status == 403
            with pytest.raises(ServeClientError) as denied:
                replica.bootstrap("other")
            assert denied.value.status == 403
            with pytest.raises(ServeClientError) as lost:
                primary.fetch_wal(cursor="99999:8", replica="ghost")
            assert lost.value.status == 410
            with pytest.raises(ServeClientError) as bad:
                primary.fetch_wal(cursor="nonsense", replica="ghost")
            assert bad.value.status == 400
            assert primary.replicate_status()["role"] == "primary"
            assert replica.replicate_status()["role"] == "replica"
            with pytest.raises(ServeClientError) as invalid:
                primary.mutate({"op": "add", "table": "t", "tid": "w"})
            assert invalid.value.status == 400
        finally:
            follower.stop()
            rtr.close()
            ptr.close()
            db.close()

    def test_follower_rebootstraps_after_cursor_loss(self, tmp_path):
        db, ptr, applier, follower, rtr = _loopback_pair(tmp_path)
        try:
            server = None
            for i in range(80):
                db.add("t", f"burst{i}", score=600.0 + i, probability=0.5)
            follower.stop()
            # Forget the replica so its pin lifts, then compact.
            papp_replication = ptr.app.replication
            papp_replication.forget("r1")
            db.snapshot()
            bootstraps_before = applier.bootstraps
            follower.start()
            target = db.table("t").version
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if applier.db.table("t").version >= target:
                    break
                time.sleep(0.01)
            assert applier.bootstraps > bootstraps_before  # cursor was lost
            assert applier.db.table("t").version == db.table("t").version
            assert ptk_bytes(applier.db, "t") == ptk_bytes(db, "t")
        finally:
            follower.stop()
            rtr.close()
            ptr.close()
            db.close()


# ----------------------------------------------------------------------
# Promotion and epoch fencing
# ----------------------------------------------------------------------
class TestPromotion:
    def build_replica_dir(self, tmp_path):
        db = make_primary(tmp_path)
        server = ReplicationServer(db)
        replica_dir = tmp_path / "replica"
        applier = ReplicaApplier(replica_dir, replica_id="r1")
        applier.bootstrap(server.handle_bootstrap("r1"))
        db.add("t", "pre-failover", score=700.0, probability=0.9)
        applier.apply_batch(server.handle_fetch("r1", applier.cursor.encode()))
        applier.close()
        return db, replica_dir

    def test_promote_bumps_epochs_and_preserves_state(self, tmp_path):
        db, replica_dir = self.build_replica_dir(tmp_path)
        version = db.table("t").version
        report = promote_data_dir(replica_dir)
        assert report.new_epochs["t"] == report.old_epochs.get("t", 0) + 1
        promoted = DurableDB(replica_dir, fsync="off")
        assert promoted.table("t").version == version
        assert promoted.epochs()["t"] == report.new_epochs["t"]
        assert ptk_bytes(promoted, "t") == ptk_bytes(db, "t")
        promoted.close()
        db.close()

    def test_fencing_rejects_old_lineage_records(self, tmp_path):
        """After promotion, a register record from the dead primary's
        epoch must not supersede the promoted table."""
        db, replica_dir = self.build_replica_dir(tmp_path)
        promote_data_dir(replica_dir)
        tables, report = recover_state(replica_dir)
        epochs = dict(report.epochs)
        from repro.io.jsonio import table_to_dict

        stale = {
            "op": "register",
            "table": "t",
            "epoch": 0,  # the dead primary's lineage
            "version": tables["t"].version + 50,
            "doc": table_to_dict(db.table("t")),
        }
        assert apply_record(tables, stale, epochs) is False
        assert epochs["t"] == report.epochs["t"]
        db.close()

    def test_promote_cli(self, tmp_path, capsys):
        db, replica_dir = self.build_replica_dir(tmp_path)
        db.close()
        assert main(["replicate", "promote", str(replica_dir)]) == 0
        out = capsys.readouterr().out
        assert "promoted 1 table(s)" in out and "epoch 1 -> 2" in out
        tables, report = recover_state(replica_dir)
        assert report.epochs["t"] == 2
        assert len(tables["t"]) == len(sample_table()) + 1

    def test_promote_empty_directory_fails(self, tmp_path):
        with pytest.raises(ReplicationError):
            promote_data_dir(tmp_path / "nothing")
