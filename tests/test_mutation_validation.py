"""Mutation-input validation at the UncertainDB/DurableDB boundary.

A rejected mutation must be a *non-event*: consistent exception
taxonomy (``MutationError`` under ``ValidationError``), no table state
change, no version bump, no WAL record, no dynamic-index delta.
"""

import math

import pytest

from repro.durable.db import DurableDB
from repro.exceptions import (
    DuplicateTupleError,
    InvalidProbabilityError,
    InvalidScoreError,
    MutationError,
    ReproError,
    UnknownTupleError,
    ValidationError,
)
from repro.model.table import UncertainTable
from repro.query.engine import UncertainDB


def make_db():
    db = UncertainDB()
    table = UncertainTable(name="t")
    db.register(table, name="t")
    db.add("t", "a", 10.0, 0.5)
    db.add("t", "b", 9.0, 0.4)
    return db


BAD_PROBABILITIES = [0.0, -0.25, 1.5, float("nan"), float("inf"), "0.5", None, True]
BAD_SCORES = [float("nan"), float("inf"), float("-inf"), "10", None, False]


class TestTaxonomy:
    def test_hierarchy(self):
        # One umbrella for the write path; all still ValidationErrors so
        # pre-existing callers that catch broadly keep working.
        for exc in (InvalidProbabilityError, InvalidScoreError, DuplicateTupleError):
            assert issubclass(exc, MutationError)
            assert issubclass(exc, ValidationError)
            assert issubclass(exc, ReproError)


class TestProbabilityValidation:
    @pytest.mark.parametrize("bad", BAD_PROBABILITIES)
    def test_add_rejects_bad_probability(self, bad):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(InvalidProbabilityError):
            db.add("t", "c", 5.0, bad)
        assert db.table("t").version == version
        assert db.table("t").tuple_ids() == ["a", "b"]

    @pytest.mark.parametrize("bad", BAD_PROBABILITIES)
    def test_update_rejects_bad_probability(self, bad):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(InvalidProbabilityError):
            db.update_probability("t", "a", bad)
        assert db.table("t").version == version
        assert db.table("t").probability("a") == 0.5

    def test_probability_just_over_one_is_clamped_not_rejected(self):
        # The documented tolerance: float noise above 1.0 clamps to 1.0.
        db = make_db()
        db.update_probability("t", "a", 1.0 + 1e-12)
        assert db.table("t").probability("a") == 1.0


class TestScoreValidation:
    @pytest.mark.parametrize("bad", BAD_SCORES)
    def test_add_rejects_bad_score(self, bad):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(InvalidScoreError):
            db.add("t", "c", bad, 0.5)
        assert db.table("t").version == version

    @pytest.mark.parametrize("bad", BAD_SCORES)
    def test_update_score_rejects_bad_score(self, bad):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(InvalidScoreError):
            db.update_score("t", "a", bad)
        assert db.table("t").version == version
        assert db.table("t").get("a").score == 10.0

    def test_update_score_moves_rank(self):
        db = make_db()
        db.update_score("t", "b", 20.0)
        ranked = [tup.tid for tup in db.table("t").ranked_tuples()]
        assert ranked == ["b", "a"]


class TestDuplicateAndUnknown:
    def test_duplicate_tid_rejected(self):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(DuplicateTupleError):
            db.add("t", "a", 1.0, 0.1)
        assert db.table("t").version == version
        assert db.table("t").probability("a") == 0.5

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda db: db.remove_tuple("t", "zzz"),
            lambda db: db.update_probability("t", "zzz", 0.5),
            lambda db: db.update_score("t", "zzz", 1.0),
        ],
    )
    def test_unknown_tuple_rejected(self, mutate):
        db = make_db()
        version = db.table("t").version
        with pytest.raises(UnknownTupleError):
            mutate(db)
        assert db.table("t").version == version


class TestDurableBoundary:
    """A rejected mutation must never reach the WAL: on reopen the
    recovered version equals the pre-rejection version exactly."""

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda db: db.add("d", "x0", 1.0, 0.5),  # duplicate
            lambda db: db.add("d", "y", float("nan"), 0.5),
            lambda db: db.add("d", "y", 1.0, 2.0),
            lambda db: db.update_probability("d", "x0", -1.0),
            lambda db: db.update_score("d", "x0", float("inf")),
        ],
    )
    def test_rejection_is_not_journalled(self, tmp_path, mutate):
        db = DurableDB(tmp_path, fsync="off")
        table = UncertainTable(name="d")
        db.register(table, name="d")
        db.add("d", "x0", 10.0, 0.5)
        version = db.table("d").version
        with pytest.raises(MutationError):
            mutate(db)
        assert db.table("d").version == version
        db.close()
        reopened = DurableDB(tmp_path, fsync="off")
        assert reopened.table("d").version == version
        assert reopened.table("d").tuple_ids() == ["x0"]
        reopened.close()

    def test_rejection_emits_no_dynamic_delta(self):
        db = make_db()
        db.enable_dynamic(cap=4)
        db.ptk("t", k=2, threshold=0.3)  # build the index
        applied = db.dynamic.deltas_applied
        with pytest.raises(MutationError):
            db.add("t", "a", 1.0, 0.1)
        db.ptk("t", k=2, threshold=0.3)
        assert db.dynamic.deltas_applied == applied
        assert db.dynamic.fallbacks == {}


class TestServeMapping:
    def test_mutation_errors_map_to_http_400(self):
        from repro.serve.client import LoopbackTransport, ServeClient, ServeClientError
        from repro.serve.server import ServeApp, ServeConfig

        db = make_db()
        app = ServeApp(db, ServeConfig(window_ms=0.0, enable_obs=False))
        with LoopbackTransport(app) as transport:
            client = ServeClient(transport)
            for payload in [
                {"op": "add", "table": "t", "tid": "a", "score": 1.0,
                 "probability": 0.5},  # duplicate
                {"op": "score", "table": "t", "tid": "a",
                 "score": float("nan")},
            ]:
                with pytest.raises(ServeClientError) as err:
                    client.mutate(payload)
                assert err.value.status == 400
            # protocol-level validation catches range errors even earlier
            with pytest.raises(ServeClientError) as err:
                client.mutate({"op": "update", "table": "t", "tid": "a",
                               "probability": 2.0})
            assert err.value.status == 400
