"""Tests for rule-tuple compression and compressed dominant sets."""

import pytest
from hypothesis import given, settings

from repro.core.rule_compression import (
    CompressionUnit,
    DominantSetScan,
    compressed_dominant_set,
    rule_index_of_table,
)
from repro.datagen.sensors import example3_table, example5_table
from tests.conftest import build_table, uncertain_tables


def scan_units(table):
    """units_for(t_i) from the incremental scanner, per ranked position."""
    ranked = table.ranked_tuples()
    rule_of = rule_index_of_table(table)
    scan = DominantSetScan(ranked, rule_of)
    per_tuple = []
    for tup in ranked:
        per_tuple.append(scan.units_for(tup))
        scan.advance(tup)
    return ranked, per_tuple


def unit_key_set(units):
    return {u.members for u in units}


class TestPaperExample3:
    def test_t6_compression(self):
        # T(t6) = {t1, t_{2,4}, t3, t5} with Pr(t_{2,4}) = 0.5
        table = example3_table()
        ranked = table.ranked_tuples()
        rule_of = rule_index_of_table(table)
        units = compressed_dominant_set(ranked, rule_of, index=5)  # t6
        keys = {frozenset(u.members): u for u in units}
        assert frozenset({"t2", "t4"}) in keys
        assert keys[frozenset({"t2", "t4"})].probability == pytest.approx(0.5)
        assert frozenset({"t1"}) in keys
        assert frozenset({"t3"}) in keys
        assert frozenset({"t5"}) in keys
        assert len(units) == 4

    def test_t7_excludes_own_rule(self):
        # t7 is in R2 = {t5, t7}: T(t7) = {t1, t_{2,4}, t3, t6}
        table = example3_table()
        ranked = table.ranked_tuples()
        rule_of = rule_index_of_table(table)
        units = compressed_dominant_set(ranked, rule_of, index=6)  # t7
        keys = unit_key_set(units)
        assert frozenset({"t5"}) not in keys
        assert frozenset({"t6"}) in keys
        assert frozenset({"t2", "t4"}) in keys
        assert len(units) == 4


class TestUnitMetadata:
    def test_open_vs_completed(self):
        table = example5_table()
        ranked = table.ranked_tuples()
        rule_of = rule_index_of_table(table)
        # at t9 (index 8): R2 = {t4, t5, t10} has seen t4, t5; next is t10
        units = compressed_dominant_set(ranked, rule_of, index=8)
        by_key = {u.members: u for u in units}
        r2 = by_key[frozenset({"t4", "t5"})]
        assert r2.is_open
        assert r2.next_rank == 9  # t10 sits at rank index 9
        # at t11 (index 10): R2 fully seen -> completed
        units = compressed_dominant_set(ranked, rule_of, index=10)
        by_key = {u.members: u for u in units}
        r2_done = by_key[frozenset({"t4", "t5", "t10"})]
        assert not r2_done.is_open
        assert r2_done.last_rank == 9

    def test_independent_unit_ranks(self):
        table = build_table([0.5, 0.5], rule_groups=[])
        ranked = table.ranked_tuples()
        units = compressed_dominant_set(ranked, {}, index=1)
        assert len(units) == 1
        unit = units[0]
        assert unit.first_rank == unit.last_rank == 0
        assert not unit.is_rule_tuple

    def test_rule_probability_clamped(self):
        unit = CompressionUnit(
            members=frozenset({"a"}),
            probability=1.0,
            rule_id="r",
            first_rank=0,
            last_rank=0,
            next_rank=None,
        )
        assert unit.probability == 1.0


class TestIncrementalMatchesFromScratch:
    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=50, deadline=None)
    def test_scan_equals_direct(self, table):
        ranked, per_tuple = scan_units(table)
        rule_of = rule_index_of_table(table)
        for i in range(len(ranked)):
            direct = compressed_dominant_set(ranked, rule_of, i)
            incremental = per_tuple[i]
            direct_map = {u.members: u for u in direct}
            incremental_map = {u.members: u for u in incremental}
            assert direct_map.keys() == incremental_map.keys()
            for key, unit in direct_map.items():
                other = incremental_map[key]
                assert unit.probability == pytest.approx(other.probability)
                assert unit.first_rank == other.first_rank
                assert unit.last_rank == other.last_rank
                assert unit.next_rank == other.next_rank

    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=30, deadline=None)
    def test_unit_probability_mass_conserved(self, table):
        # compression preserves total probability mass of the dominant set
        ranked, per_tuple = scan_units(table)
        rule_of = rule_index_of_table(table)
        for i, tup in enumerate(ranked):
            own_rule = rule_of.get(tup.tid)
            expected = 0.0
            for prior in ranked[:i]:
                prior_rule = rule_of.get(prior.tid)
                if (
                    own_rule is not None
                    and prior_rule is not None
                    and prior_rule.rule_id == own_rule.rule_id
                ):
                    continue  # removed by Corollary 2
                expected += prior.probability
            got = sum(u.probability for u in per_tuple[i])
            assert got == pytest.approx(min(expected, expected), abs=1e-9)


class TestScanBookkeeping:
    def test_all_units_includes_own_rule(self, ruled_table):
        ranked = ruled_table.ranked_tuples()
        rule_of = rule_index_of_table(ruled_table)
        scan = DominantSetScan(ranked, rule_of)
        for tup in ranked:
            scan.advance(tup)
        all_units = scan.all_units()
        covered = set()
        for unit in all_units:
            covered |= unit.members
        assert covered == {t.tid for t in ranked}

    def test_excluded_unit_for(self, ruled_table):
        ranked = ruled_table.ranked_tuples()
        rule_of = rule_index_of_table(ruled_table)
        scan = DominantSetScan(ranked, rule_of)
        for tup in ranked:
            excluded = scan.excluded_unit_for(tup)
            own = rule_of.get(tup.tid)
            if own is None:
                assert excluded is None
            elif excluded is not None:
                assert excluded.rule_id == own.rule_id
            scan.advance(tup)

    def test_scanned_counter(self, simple_table):
        ranked = simple_table.ranked_tuples()
        scan = DominantSetScan(ranked, {})
        assert scan.scanned == 0
        scan.advance(ranked[0])
        assert scan.scanned == 1

    def test_rule_unit_lookup(self, ruled_table):
        ranked = ruled_table.ranked_tuples()
        rule_of = rule_index_of_table(ruled_table)
        scan = DominantSetScan(ranked, rule_of)
        assert scan.rule_unit("r0") is None
        for tup in ranked:
            scan.advance(tup)
        assert scan.rule_unit("r0") is not None
