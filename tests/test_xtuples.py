"""Tests for the x-tuple (attribute-level uncertainty) embedding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError, ValidationError
from repro.model.worlds import enumerate_possible_worlds
from repro.model.xtuples import (
    XTuple,
    entity_of,
    entity_ptk_query,
    entity_topk_probabilities,
    table_from_xtuples,
)
from repro.query.topk import TopKQuery


def xt(entity, *alternatives, **attributes):
    return XTuple(
        entity_id=entity, alternatives=tuple(alternatives), attributes=attributes
    )


@st.composite
def xtuple_sets(draw):
    n = draw(st.integers(1, 5))
    xtuples = []
    for e in range(n):
        m = draw(st.integers(1, 3))
        raw = [
            (
                draw(st.floats(0, 100, allow_nan=False)),
                draw(st.floats(0.05, 0.9)),
            )
            for _ in range(m)
        ]
        total = sum(p for _, p in raw)
        if total > 0.95:
            raw = [(s, p / total * 0.95) for s, p in raw]
        xtuples.append(xt(f"e{e}", *raw))
    return xtuples


class TestXTupleValidation:
    def test_rejects_empty_alternatives(self):
        with pytest.raises(ValidationError):
            XTuple(entity_id="e", alternatives=())

    def test_rejects_oversubscribed(self):
        with pytest.raises(ValidationError):
            xt("e", (10, 0.6), (20, 0.6))

    def test_existence_probability(self):
        assert xt("e", (10, 0.3), (20, 0.5)).existence_probability == pytest.approx(
            0.8
        )


class TestEmbedding:
    def test_builds_rules_per_entity(self):
        table = table_from_xtuples(
            [xt("a", (10, 0.4), (20, 0.5)), xt("b", (15, 0.9))]
        )
        assert len(table) == 3
        assert len(table.multi_rules()) == 1
        assert entity_of(table, "a#0") == "a"
        assert entity_of(table, "b#0") == "b"

    def test_attributes_copied(self):
        table = table_from_xtuples([xt("a", (10, 0.4), color="red")])
        assert table.get("a#0").attributes["color"] == "red"

    def test_duplicate_entity_rejected(self):
        with pytest.raises(ValidationError):
            table_from_xtuples([xt("a", (1, 0.5)), xt("a", (2, 0.5))])

    def test_one_alternative_per_world(self):
        table = table_from_xtuples([xt("a", (10, 0.4), (20, 0.5))])
        for world in enumerate_possible_worlds(table):
            assert len(world) <= 1


class TestEntityProbabilities:
    def test_disjoint_sum(self):
        # entity "a" is top-1 when either alternative wins
        table = table_from_xtuples(
            [xt("a", (10, 0.3), (20, 0.3)), xt("b", (15, 0.5))]
        )
        query = TopKQuery(k=1)
        probabilities = entity_topk_probabilities(table, query)
        # a@20 wins whenever present (0.3); a@10 wins when present and
        # neither a@20 (impossible together) nor b present: 0.3*0.5
        assert probabilities["a"] == pytest.approx(0.3 + 0.3 * 0.5)
        # b wins when present and a@20 absent: 0.5 * 0.7
        assert probabilities["b"] == pytest.approx(0.5 * 0.7)

    @given(xtuple_sets(), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_matches_world_enumeration(self, xtuples, k):
        table = table_from_xtuples(xtuples)
        query = TopKQuery(k=k)
        probabilities = entity_topk_probabilities(table, query)
        # ground truth: per-world top-k, credited to entities
        by_id = {t.tid: t for t in table}
        truth = {x.entity_id: 0.0 for x in xtuples}
        for world in enumerate_possible_worlds(table):
            members = [by_id[tid] for tid in world.tuple_ids]
            for tup in query.answer_on_world(members):
                truth[entity_of(table, tup.tid)] += world.probability
        for entity, expected in truth.items():
            assert probabilities.get(entity, 0.0) == pytest.approx(
                expected, abs=1e-9
            )

    @given(xtuple_sets())
    @settings(max_examples=20, deadline=None)
    def test_bounded_by_existence(self, xtuples):
        table = table_from_xtuples(xtuples)
        probabilities = entity_topk_probabilities(table, TopKQuery(k=2))
        existence = {x.entity_id: x.existence_probability for x in xtuples}
        for entity, probability in probabilities.items():
            assert probability <= existence[entity] + 1e-9


class TestEntityQuery:
    def test_answers_are_entities(self):
        table = table_from_xtuples(
            [xt("a", (10, 0.3), (20, 0.3)), xt("b", (15, 0.5))]
        )
        answer = entity_ptk_query(table, TopKQuery(k=1), 0.4)
        assert answer.answer_set == {"a"}
        assert answer.method == "entity-ptk"

    def test_answers_ordered_by_best_alternative(self):
        table = table_from_xtuples(
            [xt("slow", (5, 0.8)), xt("fast", (50, 0.8))]
        )
        answer = entity_ptk_query(table, TopKQuery(k=2), 0.1)
        assert answer.answers == ["fast", "slow"]

    def test_threshold_validation(self):
        table = table_from_xtuples([xt("a", (1, 0.5))])
        with pytest.raises(QueryError):
            entity_ptk_query(table, TopKQuery(k=1), 0.0)

    def test_plain_table_degrades_gracefully(self):
        from tests.conftest import build_table

        table = build_table([0.5, 0.4], rule_groups=[])
        probabilities = entity_topk_probabilities(table, TopKQuery(k=1))
        assert set(probabilities) == {"t0", "t1"}
