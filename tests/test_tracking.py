"""Tests for the mobile-object tracking workload generator."""

import numpy as np
import pytest

from repro.datagen.tracking import (
    TrackingConfig,
    detection_stream,
    detections_of_object,
    tracking_table,
)
from repro.exceptions import ValidationError
from repro.stream import SlidingWindowPTK


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TrackingConfig(n_objects=0).validate()
        with pytest.raises(ValidationError):
            TrackingConfig(detection_rate=0.0).validate()
        with pytest.raises(ValidationError):
            TrackingConfig(multi_station_rate=1.5).validate()


class TestStream:
    def config(self):
        return TrackingConfig(n_objects=10, n_ticks=20, seed=4)

    def test_time_ordered(self):
        ticks = [
            det.attributes["tick"] for det, _ in detection_stream(self.config())
        ]
        assert ticks == sorted(ticks)

    def test_unique_ids(self):
        ids = [det.tid for det, _ in detection_stream(self.config())]
        assert len(set(ids)) == len(ids)

    def test_tags_group_codetections(self):
        tagged = {}
        for det, tag in detection_stream(self.config()):
            if tag is not None:
                tagged.setdefault(tag, []).append(det)
        assert tagged  # multi-station detections exist
        for tag, dets in tagged.items():
            assert 2 <= len(dets) <= 3
            # one object, one tick
            assert len({d.attributes["object"] for d in dets}) == 1
            assert len({d.attributes["tick"] for d in dets}) == 1
            # exclusive probabilities are legal
            assert sum(d.probability for d in dets) <= 1.0 + 1e-9

    def test_deterministic_under_seed(self):
        a = [(d.tid, d.score) for d, _ in detection_stream(self.config())]
        b = [(d.tid, d.score) for d, _ in detection_stream(self.config())]
        assert a == b

    def test_stream_feeds_window_without_errors(self):
        window = SlidingWindowPTK(k=3, threshold=0.4, window_size=50)
        for det, tag in detection_stream(self.config()):
            window.append(det, rule_tag=tag)
        answer = window.answer()
        for tid in answer.answers:
            assert answer.probabilities[tid] >= 0.4


class TestTable:
    def test_table_matches_stream(self):
        config = TrackingConfig(n_objects=8, n_ticks=15, seed=5)
        table = tracking_table(config)
        stream_count = sum(1 for _ in detection_stream(config))
        assert len(table) == stream_count
        table.validate()

    def test_rules_built_from_tags(self):
        config = TrackingConfig(
            n_objects=8, n_ticks=15, multi_station_rate=1.0, seed=5
        )
        table = tracking_table(config)
        assert len(table.multi_rules()) > 0

    def test_no_rules_when_single_station(self):
        config = TrackingConfig(
            n_objects=8, n_ticks=15, multi_station_rate=0.0, seed=5
        )
        assert tracking_table(config).multi_rules() == []

    def test_detections_of_object(self):
        config = TrackingConfig(n_objects=5, n_ticks=10, seed=6)
        table = tracking_table(config)
        detections = detections_of_object(table, "obj0")
        assert detections
        assert all(d.attributes["object"] == "obj0" for d in detections)
