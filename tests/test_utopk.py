"""Tests for the U-TopK baseline (most probable top-k vector)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rule_compression import rule_index_of_table
from repro.datagen.sensors import panda_table
from repro.exceptions import QueryError
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_vector_probabilities
from repro.semantics.utopk import utopk_query, utopk_search
from tests.conftest import build_table, uncertain_tables


class TestPaperValues:
    def test_panda_utop2(self):
        # Paper Section 1: U-Top2 on Table 1 is <R5, R3>, probability 0.28
        answer = utopk_query(panda_table(), TopKQuery(k=2))
        assert answer.vector == ("R5", "R3")
        assert answer.probability == pytest.approx(0.28)


class TestBasics:
    def test_certain_tuples(self):
        table = build_table([1.0, 1.0, 1.0], rule_groups=[])
        answer = utopk_query(table, TopKQuery(k=2))
        assert answer.vector == ("t0", "t1")
        assert answer.probability == pytest.approx(1.0)

    def test_vector_in_ranking_order(self):
        table = build_table([0.9, 0.9, 0.9], rule_groups=[])
        answer = utopk_query(table, TopKQuery(k=2))
        assert answer.vector == ("t0", "t1")

    def test_k_larger_than_table(self):
        table = build_table([0.9, 0.9], rule_groups=[])
        answer = utopk_query(table, TopKQuery(k=5))
        assert answer.vector == ("t0", "t1")
        assert answer.probability == pytest.approx(0.81)

    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            utopk_search([], {}, k=0)

    def test_expansion_cap(self):
        table = build_table([0.5] * 12, rule_groups=[])
        with pytest.raises(QueryError):
            utopk_query(table, TopKQuery(k=6), max_expansions=3)

    def test_sparse_world_shorter_vector_can_win(self):
        # one tuple with tiny probability: the empty vector wins
        table = build_table([0.01], rule_groups=[])
        answer = utopk_query(table, TopKQuery(k=1))
        assert answer.vector == ()
        assert answer.probability == pytest.approx(0.99)


class TestAgainstEnumeration:
    @given(uncertain_tables(max_tuples=9), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_finds_most_probable_vector(self, table, k):
        query = TopKQuery(k=k)
        truth = naive_topk_vector_probabilities(table, query)
        best_probability = max(truth.values())
        answer = utopk_query(table, query)
        assert answer.probability == pytest.approx(best_probability, abs=1e-9)
        # the returned vector must actually achieve that probability
        assert truth[answer.vector] == pytest.approx(
            answer.probability, abs=1e-9
        )

    @given(uncertain_tables(max_tuples=8))
    @settings(max_examples=25, deadline=None)
    def test_vector_probability_is_exact(self, table):
        query = TopKQuery(k=2)
        truth = naive_topk_vector_probabilities(table, query)
        answer = utopk_query(table, query)
        assert answer.vector in truth


class TestRuleHandling:
    def test_exclusive_pair_never_together(self):
        table = build_table([0.5, 0.5, 0.9], rule_groups=[[0, 1]])
        answer = utopk_query(table, TopKQuery(k=2))
        assert not ({"t0", "t1"} <= set(answer.vector))

    def test_certain_rule(self):
        # rule with total probability 1: exactly one member appears
        table = build_table([0.6, 0.4, 0.8], rule_groups=[[0, 1]])
        query = TopKQuery(k=2)
        truth = naive_topk_vector_probabilities(table, query)
        answer = utopk_query(table, query)
        assert answer.probability == pytest.approx(max(truth.values()))
