"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_table, main, save_table
from repro.datagen.sensors import panda_table


@pytest.fixture
def panda_json(tmp_path):
    path = tmp_path / "panda.json"
    save_table(panda_table(), str(path))
    return str(path)


class TestGenerate:
    def test_generate_panda(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["generate", "panda", "--out", str(out)]) == 0
        assert "6 tuples, 2 rules" in capsys.readouterr().out
        table = load_table(str(out))
        assert len(table) == 6

    def test_generate_synthetic_small(self, tmp_path):
        out = tmp_path / "s.json"
        code = main(
            [
                "generate",
                "synthetic",
                "--tuples",
                "200",
                "--rules",
                "20",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert len(load_table(str(out))) == 200

    def test_generate_iceberg_csv(self, tmp_path):
        out = tmp_path / "ice"
        code = main(
            [
                "generate",
                "iceberg",
                "--tuples",
                "150",
                "--rules",
                "20",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert (tmp_path / "ice.tuples.csv").exists()
        assert (tmp_path / "ice.rules.csv").exists()
        assert len(load_table(str(tmp_path / "ice.tuples.csv"))) == 150


class TestInfoAndWorlds:
    def test_info(self, panda_json, capsys):
        assert main(["info", panda_json]) == 0
        out = capsys.readouterr().out
        assert "tuples:          6" in out
        assert "possible worlds: 12" in out

    def test_worlds(self, panda_json, capsys):
        assert main(["worlds", panda_json]) == 0
        out = capsys.readouterr().out
        assert out.count("Pr=") == 12


class TestQuery:
    def test_ptk_exact(self, panda_json, capsys):
        assert main(["query", panda_json, "-k", "2", "-p", "0.35"]) == 0
        out = capsys.readouterr().out
        answered = {line.split("\t")[0] for line in out.splitlines() if "\t" in line}
        assert answered == {"R2", "R3", "R5"}

    def test_ptk_requires_threshold(self, panda_json, capsys):
        assert main(["query", panda_json, "-k", "2"]) == 2

    def test_ptk_sampled(self, panda_json, capsys):
        code = main(
            ["query", panda_json, "-k", "2", "-p", "0.35", "--sample", "20000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        answered = {line.split("\t")[0] for line in out.splitlines() if "\t" in line}
        assert answered == {"R2", "R3", "R5"}

    def test_ptk_variant_choice(self, panda_json, capsys):
        code = main(
            ["query", panda_json, "-k", "2", "-p", "0.35", "--variant", "RC"]
        )
        assert code == 0
        assert "(RC)" in capsys.readouterr().out

    def test_utopk(self, panda_json, capsys):
        assert main(["query", panda_json, "-k", "2", "--semantics", "utopk"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[1:] == ["R5", "R3"]

    def test_ukranks(self, panda_json, capsys):
        assert main(["query", panda_json, "-k", "2", "--semantics", "ukranks"]) == 0
        out = capsys.readouterr().out
        assert out.count("R5") == 2

    def test_global_topk(self, panda_json, capsys):
        code = main(
            ["query", panda_json, "-k", "2", "--semantics", "global-topk"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R5" in out and "R2" in out

    def test_where_clause_restricts_candidates(self, panda_json, capsys):
        code = main(
            [
                "query",
                panda_json,
                "-k",
                "2",
                "-p",
                "0.1",
                "--where",
                "location = 'B'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        answered = {line.split("\t")[0] for line in out.splitlines() if "\t" in line}
        assert answered == {"R2", "R3"}

    def test_where_clause_syntax_error(self, panda_json, capsys):
        code = main(
            ["query", panda_json, "-k", "2", "-p", "0.1", "--where", "score >"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["query", "/nonexistent.json", "-k", "2", "-p", "0.5"]) == 1
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_summary(self, panda_json, capsys):
        assert main(["explain", panda_json, "R4", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pr^2(R4) = 0.2020" in out
        assert "suppressors" in out

    def test_explain_unknown_tuple(self, panda_json, capsys):
        assert main(["explain", panda_json, "R99", "-k", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_limit(self, panda_json, capsys):
        assert main(["explain", panda_json, "R4", "-k", "2", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("+0.") == 1


class TestRoundTripHelpers:
    def test_csv_stem_inference(self, tmp_path):
        save_table(panda_table(), str(tmp_path / "t"))
        via_stem = load_table(str(tmp_path / "t"))
        via_file = load_table(str(tmp_path / "t.tuples.csv"))
        assert len(via_stem) == len(via_file) == 6

    def test_corrupt_json_is_repro_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "tuples": [{"tid": "a"}]}))
        assert main(["info", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
