"""Shared fixtures and hypothesis strategies for the test suite.

The central tool is :func:`uncertain_tables`, a hypothesis strategy that
builds small random uncertain tables *with* multi-tuple generation rules,
sized so that naive possible-world enumeration stays cheap — every fast
algorithm is property-tested against the enumerator.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest
from hypothesis import strategies as st

from repro.model.table import UncertainTable


def build_table(
    probabilities: List[float],
    rule_groups: List[List[int]],
    scores: Optional[List[float]] = None,
    name: str = "test_table",
) -> UncertainTable:
    """Construct a table from bare probabilities and rule index groups.

    :param probabilities: membership probability of tuple ``i`` (id
        ``t{i}``).
    :param rule_groups: lists of tuple indices forming multi-tuple rules;
        groups must be disjoint and each group's probabilities must sum
        to <= 1 (callers are responsible).
    :param scores: optional explicit scores; defaults to descending by
        index so tuple ``t0`` ranks first.
    """
    table = UncertainTable(name=name)
    n = len(probabilities)
    if scores is None:
        scores = [float(n - i) for i in range(n)]
    for i, (p, s) in enumerate(zip(probabilities, scores)):
        table.add(f"t{i}", score=s, probability=p)
    for g, group in enumerate(rule_groups):
        table.add_exclusive(f"r{g}", *[f"t{i}" for i in group])
    return table


@st.composite
def uncertain_tables(
    draw,
    min_tuples: int = 1,
    max_tuples: int = 10,
    allow_rules: bool = True,
) -> UncertainTable:
    """Hypothesis strategy: small random uncertain tables with rules.

    Probabilities are drawn in [0.05, 0.95]; tuples assigned to one rule
    have their probabilities rescaled so the rule sums to at most ~0.95.
    Scores are a random permutation, so rule members scatter through the
    ranking.
    """
    n = draw(st.integers(min_tuples, max_tuples))
    probabilities = [
        draw(st.floats(0.05, 0.95, allow_nan=False, allow_infinity=False))
        for _ in range(n)
    ]
    seed = draw(st.integers(0, 2**31 - 1))
    rng = random.Random(seed)
    scores = [float(v) for v in rng.sample(range(10 * n + 10), n)]

    rule_groups: List[List[int]] = []
    if allow_rules and n >= 2:
        indices = list(range(n))
        rng.shuffle(indices)
        cursor = 0
        n_groups = draw(st.integers(0, max(0, n // 2)))
        for _ in range(n_groups):
            if cursor + 2 > n:
                break
            size = rng.randint(2, min(4, n - cursor))
            group = indices[cursor : cursor + size]
            cursor += size
            total = sum(probabilities[i] for i in group)
            if total > 0.95:
                scale = 0.95 / total
                for i in group:
                    probabilities[i] = max(1e-3, probabilities[i] * scale)
            rule_groups.append(group)

    return build_table(probabilities, rule_groups, scores=scores)


@pytest.fixture
def simple_table() -> UncertainTable:
    """Five independent tuples with easy hand-checkable probabilities."""
    return build_table([0.5, 0.4, 1.0, 0.3, 0.8], rule_groups=[])


@pytest.fixture
def ruled_table() -> UncertainTable:
    """Seven tuples, two rules, rule members interleaved in the ranking."""
    return build_table(
        [0.5, 0.3, 0.6, 0.2, 0.6, 0.4, 0.25],
        rule_groups=[[1, 4], [3, 6]],
    )
