"""Unit tests for the ranked progressive stream (scan-depth accounting)."""

from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.access import RankedStream


def make(tid, score):
    return UncertainTuple(tid=tid, score=score, probability=0.5)


def stream3() -> RankedStream:
    return RankedStream([make("a", 1), make("b", 5), make("c", 3)])


class TestOrdering:
    def test_sorts_best_first(self):
        assert [t.tid for t in stream3()] == ["b", "c", "a"]

    def test_presorted_skips_sort(self):
        tuples = [make("a", 1), make("b", 5)]  # deliberately unsorted
        stream = RankedStream(tuples, presorted=True)
        assert [t.tid for t in stream] == ["a", "b"]

    def test_from_table(self):
        table = UncertainTable()
        table.add("x", 1, 0.5)
        table.add("y", 2, 0.5)
        stream = RankedStream.from_table(table)
        assert [t.tid for t in stream] == ["y", "x"]


class TestCursor:
    def test_scan_depth_counts_retrievals(self):
        stream = stream3()
        assert stream.scan_depth == 0
        stream.next_tuple()
        stream.next_tuple()
        assert stream.scan_depth == 2

    def test_peek_does_not_advance(self):
        stream = stream3()
        assert stream.peek().tid == "b"
        assert stream.scan_depth == 0
        assert stream.next_tuple().tid == "b"

    def test_exhaustion(self):
        stream = stream3()
        for _ in range(3):
            stream.next_tuple()
        assert stream.exhausted
        assert stream.next_tuple() is None
        assert stream.peek() is None
        assert stream.scan_depth == 3  # failed retrieval not counted

    def test_rewind(self):
        stream = stream3()
        stream.next_tuple()
        stream.rewind()
        assert stream.scan_depth == 0
        assert stream.next_tuple().tid == "b"

    def test_len(self):
        assert len(stream3()) == 3

    def test_full_ranked_list_does_not_advance(self):
        stream = stream3()
        full = stream.full_ranked_list()
        assert [t.tid for t in full] == ["b", "c", "a"]
        assert stream.scan_depth == 0

    def test_early_stop_scan_depth(self):
        # the exact algorithm's usage pattern: break mid-iteration
        stream = stream3()
        for tup in stream:
            if tup.tid == "c":
                break
        assert stream.scan_depth == 2
