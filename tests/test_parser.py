"""Tests for the predicate expression parser."""

import pytest

from repro.core.exact import exact_ptk_query
from repro.exceptions import QueryError
from repro.model.tuples import UncertainTuple
from repro.query.parser import parse_predicate
from repro.query.topk import TopKQuery
from repro.datagen.sensors import panda_table


def tup(score=10.0, probability=0.5, **attributes):
    return UncertainTuple(
        tid="t", score=score, probability=probability, attributes=attributes
    )


class TestComparisons:
    def test_score_comparison(self):
        pred = parse_predicate("score > 10")
        assert pred(tup(score=11))
        assert not pred(tup(score=10))

    def test_probability_comparison(self):
        pred = parse_predicate("probability >= 0.5")
        assert pred(tup(probability=0.5))
        assert not pred(tup(probability=0.4))

    def test_all_operators(self):
        assert parse_predicate("score = 5")(tup(score=5))
        assert parse_predicate("score == 5")(tup(score=5))
        assert parse_predicate("score != 5")(tup(score=6))
        assert parse_predicate("score < 5")(tup(score=4))
        assert parse_predicate("score <= 5")(tup(score=5))
        assert parse_predicate("score >= 5")(tup(score=5))

    def test_attribute_string_equality(self):
        pred = parse_predicate("location = 'B'")
        assert pred(tup(location="B"))
        assert not pred(tup(location="A"))
        assert not pred(tup())  # missing attribute

    def test_double_quoted_string(self):
        assert parse_predicate('source = "SAT-H"')(tup(source="SAT-H"))

    def test_bareword_string(self):
        assert parse_predicate("location = B")(tup(location="B"))

    def test_numeric_attribute_coercion(self):
        pred = parse_predicate("count > 3")
        assert pred(tup(count=5))
        assert pred(tup(count="5"))  # string attribute coerced
        assert not pred(tup(count="many"))  # non-numeric -> False

    def test_type_mismatch_is_false(self):
        assert not parse_predicate("location < 3")(tup(location="B"))

    def test_scientific_notation(self):
        assert parse_predicate("probability > 1e-3")(tup(probability=0.5))


class TestCombinators:
    def test_and(self):
        pred = parse_predicate("score > 5 and probability > 0.4")
        assert pred(tup(score=6, probability=0.5))
        assert not pred(tup(score=6, probability=0.3))

    def test_or(self):
        pred = parse_predicate("score > 100 or location = 'B'")
        assert pred(tup(location="B"))
        assert not pred(tup(location="A"))

    def test_not(self):
        pred = parse_predicate("not score > 5")
        assert pred(tup(score=3))

    def test_precedence_and_binds_tighter(self):
        # a or b and c  ==  a or (b and c)
        pred = parse_predicate("score > 100 or score > 5 and score < 8")
        assert pred(tup(score=6))
        assert not pred(tup(score=9))

    def test_parentheses(self):
        pred = parse_predicate("(score > 100 or score > 5) and score < 8")
        assert pred(tup(score=6))
        assert not pred(tup(score=200))

    def test_nested_not(self):
        pred = parse_predicate("not (location = 'A' or location = 'B')")
        assert pred(tup(location="C"))
        assert not pred(tup(location="A"))

    def test_keywords_case_insensitive(self):
        pred = parse_predicate("score > 5 AND NOT location = 'A'")
        assert pred(tup(score=6, location="B"))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "score >",
            "> 5",
            "score 5",
            "(score > 5",
            "score > 5 )",
            "score > 5 extra",
            "score ~ 5",
            "and score > 5",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(QueryError):
            parse_predicate(text)


class TestEndToEnd:
    def test_parsed_predicate_in_query(self):
        table = panda_table()
        pred = parse_predicate("location = 'B' or score >= 17")
        query = TopKQuery(k=2, predicate=pred)
        answer = exact_ptk_query(table, query, 0.1)
        # selection: R1 (25), R2, R3 (loc B), R5 (17)
        selected = {t.tid for t in query.selected(table)}
        assert selected == {"R1", "R2", "R3", "R5"}
        for tid in answer.answers:
            assert tid in selected
