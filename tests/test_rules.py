"""Unit tests for generation rules."""

import pytest

from repro.exceptions import ValidationError
from repro.model.rules import GenerationRule


class TestConstruction:
    def test_multi_rule(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b", "c"))
        assert rule.length == 3
        assert rule.is_multi
        assert not rule.is_singleton

    def test_singleton_rule(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a",))
        assert rule.is_singleton
        assert not rule.is_multi

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            GenerationRule(rule_id="r", tuple_ids=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            GenerationRule(rule_id="r", tuple_ids=("a", "a"))

    def test_tuple_ids_normalised_to_tuple(self):
        rule = GenerationRule(rule_id="r", tuple_ids=["a", "b"])
        assert isinstance(rule.tuple_ids, tuple)


class TestMembership:
    def test_involves(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b"))
        assert rule.involves("a")
        assert not rule.involves("z")

    def test_contains_operator(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b"))
        assert "b" in rule
        assert "z" not in rule

    def test_iteration_and_len(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b", "c"))
        assert list(rule) == ["a", "b", "c"]
        assert len(rule) == 3


class TestRestriction:
    def test_restricts_to_survivors(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b", "c"))
        projected = rule.restricted_to(["a", "c"])
        assert projected is not None
        assert projected.tuple_ids == ("a", "c")
        assert projected.rule_id == "r"

    def test_restriction_preserves_member_order(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("c", "a", "b"))
        projected = rule.restricted_to({"a", "b", "c"})
        assert projected.tuple_ids == ("c", "a", "b")

    def test_empty_restriction_returns_none(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b"))
        assert rule.restricted_to(["z"]) is None

    def test_restriction_to_single_member(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b"))
        projected = rule.restricted_to(["b"])
        assert projected.is_singleton

    def test_accepts_set_without_copying_semantics_change(self):
        rule = GenerationRule(rule_id="r", tuple_ids=("a", "b"))
        assert rule.restricted_to(frozenset({"a"})).tuple_ids == ("a",)
