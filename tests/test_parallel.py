"""Tests for the parallel execution layer (repro.parallel)."""

import numpy as np
import pytest

from repro.core.batch import batch_ptk_queries
from repro.core.sampling import SamplingConfig, sampled_topk_probabilities
from repro.datagen.sensors import panda_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.exceptions import QueryError, SamplingError
from repro.parallel import (
    parallel_sampled_topk_probabilities,
    resolve_workers,
    shard_budgets,
    shard_map,
    shard_seeds,
    strip_for_shipping,
)
from repro.query.engine import UncertainDB
from repro.query.prepare import prepare_ranking
from repro.query.topk import TopKQuery
from repro.stats.intervals import wilson_interval


@pytest.fixture(scope="module")
def table():
    return generate_synthetic_table(
        SyntheticConfig(n_tuples=1500, n_rules=80, seed=3)
    )


QUERY = TopKQuery(k=20)


def sample(table, n_workers, use_processes=False, **overrides):
    defaults = dict(sample_size=12_000, progressive=False, seed=9)
    defaults.update(overrides)
    config = SamplingConfig(n_workers=n_workers, **defaults)
    return parallel_sampled_topk_probabilities(
        table, QUERY, config=config, use_processes=use_processes
    )


class TestShardPlumbing:
    def test_shard_budgets_split_exactly(self):
        assert shard_budgets(10, 4) == [3, 3, 2, 2]
        assert shard_budgets(8, 4) == [2, 2, 2, 2]
        assert sum(shard_budgets(50_001, 7)) == 50_001

    def test_zero_unit_shards_dropped(self):
        assert shard_budgets(2, 4) == [1, 1]

    def test_shard_budgets_validation(self):
        with pytest.raises(SamplingError):
            shard_budgets(0, 4)
        with pytest.raises(SamplingError):
            shard_budgets(100, 0)

    def test_shard_seeds_reproducible(self):
        a = shard_seeds(42, 4)
        b = shard_seeds(42, 4)
        assert len(a) == 4
        for sa, sb in zip(a, b):
            assert (
                np.random.default_rng(sa).random(8).tolist()
                == np.random.default_rng(sb).random(8).tolist()
            )

    def test_shard_seeds_independent_streams(self):
        seeds = shard_seeds(42, 3)
        draws = [np.random.default_rng(s).random(4).tolist() for s in seeds]
        assert draws[0] != draws[1] != draws[2]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(QueryError):
            resolve_workers(-1)
        with pytest.raises(QueryError):
            resolve_workers(2.5)

    def test_shard_map_preserves_task_order(self):
        assert shard_map(_square, [3, 1, 2], 2, use_processes=False) == [9, 1, 4]

    def test_shard_map_with_real_pool(self):
        # One genuine pool round trip; falls back inline where the
        # sandbox forbids subprocesses, with identical results either way.
        assert shard_map(_square, [4, 5], 2, use_processes=True) == [16, 25]


def _square(x):
    return x * x


class TestShardedSampling:
    def test_deterministic_for_fixed_triple(self, table):
        a = sample(table, n_workers=4)
        b = sample(table, n_workers=4)
        assert a.estimates == b.estimates
        assert a.units_drawn == b.units_drawn == 12_000
        assert a.total_scanned == b.total_scanned

    def test_n_workers_1_byte_identical_to_single_process(self, table):
        config = SamplingConfig(
            sample_size=12_000, progressive=False, seed=9, n_workers=1
        )
        direct = sampled_topk_probabilities(table, QUERY, config=config)
        via_parallel = sample(table, n_workers=1)
        assert direct.estimates == via_parallel.estimates
        assert direct.total_scanned == via_parallel.total_scanned

    def test_worker_count_changes_the_stream(self, table):
        # Different shard counts draw different (equally valid) units;
        # the determinism contract is per (seed, batch_size, n_workers).
        assert sample(table, 2).estimates != sample(table, 4).estimates

    def test_agreement_with_single_process_within_wilson(self, table):
        serial = sample(table, n_workers=1)
        parallel = sample(table, n_workers=4)
        n = serial.units_drawn
        checked = 0
        for tid, p_serial in serial.estimates.items():
            low, high = wilson_interval(p_serial * n, n, confidence=0.999)
            # The parallel estimate is an independent draw of the same
            # quantity; it must land inside (a slightly padded) 99.9%
            # interval of the serial one for every tuple.
            pad = 0.01
            assert low - pad <= parallel.estimate_of(tid) <= high + pad, tid
            checked += 1
        assert checked > 0

    def test_sampling_config_delegates(self, table):
        # sampled_topk_probabilities itself routes n_workers>1 runs to
        # the sharded path (this is what the CLI --workers flag hits).
        config = SamplingConfig(
            sample_size=6_000, progressive=False, seed=9, n_workers=3
        )
        via_config = sampled_topk_probabilities(table, QUERY, config=config)
        direct = sample(table, n_workers=3, sample_size=6_000)
        assert via_config.estimates == direct.estimates

    def test_explicit_rng_rejected_with_workers(self, table):
        config = SamplingConfig(sample_size=1_000, n_workers=2)
        with pytest.raises(SamplingError):
            sampled_topk_probabilities(
                table, QUERY, config=config, rng=np.random.default_rng(1)
            )

    def test_progressive_merged_stopping_deterministic(self, table):
        a = sample(table, 4, progressive=True, sample_size=40_000)
        b = sample(table, 4, progressive=True, sample_size=40_000)
        assert a.estimates == b.estimates
        assert a.units_drawn == b.units_drawn
        assert a.converged_early == b.converged_early
        if a.converged_early:
            assert a.units_drawn < 40_000
        assert a.units_drawn >= SamplingConfig().min_samples

    def test_pooled_equals_inline(self, table):
        inline = sample(table, 2, use_processes=False, sample_size=4_000)
        pooled = sample(table, 2, use_processes=True, sample_size=4_000)
        assert inline.estimates == pooled.estimates
        assert inline.total_scanned == pooled.total_scanned

    def test_prepared_shipping_strips_closures(self, table):
        prepared = prepare_ranking(table, QUERY)
        shipped = strip_for_shipping(prepared)
        import pickle

        pickle.dumps(shipped)  # the ranking lambda would choke here
        assert shipped.ranked == prepared.ranked
        assert shipped.predicate is None and shipped.ranking is None


class TestFanOut:
    @pytest.fixture()
    def db(self, table):
        database = UncertainDB()
        database.register(panda_table())
        database.register(table, name="synth")
        return database

    REQUESTS = [
        ("panda_sightings", 2, 0.35),
        ("synth", 10, 0.3),
        ("panda_sightings", 3, 0.2),
        ("synth", 5, 0.5),
        ("synth", 20, 0.1),
    ]

    def test_ptk_many_matches_sequential(self, db):
        many = db.ptk_many(self.REQUESTS, n_workers=2, use_processes=False)
        for answer, (name, k, threshold) in zip(many, self.REQUESTS):
            reference = db.ptk(name, k=k, threshold=threshold)
            assert answer.answers == reference.answers
            assert answer.probabilities == reference.probabilities
            assert answer.k == k and answer.threshold == threshold

    def test_ptk_many_with_real_pool(self, db):
        many = db.ptk_many(self.REQUESTS, n_workers=2, use_processes=True)
        inline = db.ptk_many(self.REQUESTS, n_workers=2, use_processes=False)
        for a, b in zip(many, inline):
            assert a.answers == b.answers and a.probabilities == b.probabilities

    def test_ptk_many_prepares_each_table_once(self, db):
        misses_before = db.prepare_cache.stats().misses
        db.ptk_many(self.REQUESTS, n_workers=2, use_processes=False)
        assert db.prepare_cache.stats().misses == misses_before + 2

    def test_ptk_many_unknown_table(self, db):
        from repro.exceptions import UnknownTupleError

        with pytest.raises(UnknownTupleError):
            db.ptk_many([("nope", 2, 0.5)], use_processes=False)

    def test_ptk_many_empty(self, db):
        assert db.ptk_many([], use_processes=False) == []

    def test_parallel_batch_matches_serial(self, table):
        requests = [(10, 0.3), (5, 0.5), (20, 0.2), (1, 0.9), (15, 0.4)]
        serial = batch_ptk_queries(table, requests)
        for workers in (2, 3):
            parallel = batch_ptk_queries(
                table, requests, n_workers=workers, use_processes=False
            )
            for a, b in zip(parallel, serial):
                assert a.answers == b.answers
                assert a.probabilities == b.probabilities

    def test_engine_ptk_batch_parallel(self, db):
        requests = [(10, 0.3), (5, 0.5), (20, 0.2)]
        serial = db.ptk_batch("synth", requests)
        parallel = db.ptk_batch(
            "synth", requests, n_workers=2, use_processes=False
        )
        for a, b in zip(parallel, serial):
            assert a.answers == b.answers

    def test_single_request_stays_serial(self, table):
        # A 1-request batch must not pay fan-out machinery.
        serial = batch_ptk_queries(table, [(5, 0.5)])
        parallel = batch_ptk_queries(table, [(5, 0.5)], n_workers=4)
        assert parallel[0].answers == serial[0].answers
        assert parallel[0].stats.tuples_evaluated == len(
            serial[0].probabilities
        ) or parallel[0].stats.tuples_evaluated == serial[0].stats.tuples_evaluated


class TestParallelObservability:
    def test_shard_metrics_emitted(self, table):
        import repro.obs as obs
        from repro.obs.catalog import validate_snapshot
        from repro.obs.export import snapshot

        obs.enable(fresh=True)
        try:
            sample(table, n_workers=3, sample_size=3_000)
            snap = snapshot()
            metrics = snap["metrics"]
            assert metrics["repro_parallel_shards_total"]["samples"][0][
                "value"
            ] == 3.0
            assert metrics["repro_parallel_workers"]["samples"][0]["value"] == 3.0
            assert "repro_parallel_shard_units" in metrics
            assert "repro_parallel_merge_seconds" in metrics
            assert validate_snapshot(snap) == []
        finally:
            obs.disable()

    def test_fanout_metrics_emitted(self, table):
        import repro.obs as obs
        from repro.obs.export import snapshot

        obs.enable(fresh=True)
        try:
            batch_ptk_queries(
                table,
                [(5, 0.5), (10, 0.3)],
                n_workers=2,
                use_processes=False,
            )
            metrics = snapshot()["metrics"]
            samples = metrics["repro_parallel_fanout_queries_total"]["samples"]
            by_mode = {
                tuple(sorted(s["labels"].items())): s["value"] for s in samples
            }
            assert by_mode[(("mode", "batch"),)] == 2.0
        finally:
            obs.disable()
