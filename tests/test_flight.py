"""Tests for the query flight recorder (:mod:`repro.obs.flight`).

Covers the recorder itself (ring bounding, slow-log framing and its
torn-tail tolerance, calibration), its wiring into the engines (profiles
filled by exact and sampled queries through the facade), the serving
layer's ``/debug/*`` endpoints, and the ``repro flight`` CLI.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.obs import OBS
from repro.obs.flight import (
    FlightRecorder,
    QueryProfile,
    calibration_report,
    read_jsonl,
    summarize_profiles,
    write_spans_jsonl,
)
from repro.core.sampling import SamplingConfig
from repro.query.engine import UncertainDB

from tests.conftest import build_table


@pytest.fixture(autouse=True)
def _clean_flight():
    """Fresh, quiet observability + flight state around every test."""
    obs.disable()
    obs.reset()
    OBS.flight.disable()
    OBS.flight.unconfigure()
    yield
    obs.disable()
    obs.reset()
    OBS.flight.disable()
    OBS.flight.unconfigure()


def _query_db() -> UncertainDB:
    db = UncertainDB()
    db.register(
        build_table(
            [0.9, 0.8, 0.7, 0.45, 0.4, 0.3, 0.2],
            rule_groups=[[3, 4]],
            name="sightings",
        )
    )
    return db


def _profile(**fields) -> QueryProfile:
    profile = QueryProfile(kind="test")
    for name, value in fields.items():
        setattr(profile, name, value)
    return profile


# ----------------------------------------------------------------------
# Recorder mechanics
# ----------------------------------------------------------------------
class TestRecorder:
    def test_disabled_begin_returns_none(self):
        recorder = FlightRecorder()
        assert recorder.begin("exact") is None
        assert recorder.current() is None

    def test_begin_finish_records_latency(self):
        recorder = FlightRecorder()
        recorder.enable()
        profile = recorder.begin("exact", table="t", k=3, threshold=0.5)
        assert recorder.current() is profile
        finished = recorder.finish(profile)
        assert recorder.current() is None
        assert finished.actual_seconds is not None
        assert finished.actual_seconds >= 0.0
        assert recorder.recent()[0]["table"] == "t"

    def test_ring_is_bounded_and_counts_evictions(self):
        recorder = FlightRecorder(ring_size=4)
        recorder.enable()
        for i in range(10):
            recorder.record(_profile(k=i, actual_seconds=0.001))
        recent = recorder.recent()
        assert len(recent) == 4
        # Newest first: the last recorded profile leads.
        assert recent[0]["k"] == 9
        assert recorder.stats()["evictions"] == 6
        assert recorder.stats()["recorded"] == 10

    def test_nested_profiles_stack_per_thread(self):
        recorder = FlightRecorder()
        recorder.enable()
        outer = recorder.begin("outer")
        inner = recorder.begin("inner")
        assert recorder.current() is inner
        recorder.finish(inner)
        assert recorder.current() is outer
        recorder.finish(outer)

    def test_profiles_do_not_cross_threads(self):
        recorder = FlightRecorder()
        recorder.enable()
        recorder.begin("main-thread")
        seen = []

        def worker():
            seen.append(recorder.current())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == [None]

    def test_to_dict_drops_unset_fields(self):
        profile = _profile(actual_seconds=0.5)
        data = profile.to_dict()
        assert data["kind"] == "test"
        assert data["actual_seconds"] == 0.5
        assert "scan_depth" not in data
        assert "engine" not in data
        assert not any(key.startswith("_") for key in data)


# ----------------------------------------------------------------------
# Slow-query log: threshold gating and torn-tail tolerance
# ----------------------------------------------------------------------
class TestSlowLog:
    def test_threshold_gates_the_log(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        recorder = FlightRecorder()
        recorder.configure(slow_log_path=log, slow_threshold_ms=10.0)
        recorder.enable()
        recorder.record(_profile(actual_seconds=0.001))  # fast: not logged
        recorder.record(_profile(actual_seconds=0.5))  # slow: logged
        recorder.close()
        scan = read_jsonl(log)
        assert scan.problem is None
        assert len(scan.records) == 1
        assert scan.records[0]["slow"] is True
        assert scan.records[0]["actual_seconds"] == 0.5
        assert len(recorder.slow_recent()) == 1

    def test_threshold_zero_logs_everything(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        recorder = FlightRecorder()
        recorder.configure(slow_log_path=log, slow_threshold_ms=0.0)
        recorder.enable()
        for _ in range(3):
            recorder.record(_profile(actual_seconds=0.0))
        recorder.close()
        assert len(read_jsonl(log).records) == 3

    def test_torn_tail_does_not_corrupt_prefix(self, tmp_path):
        """A SIGKILL mid-write can only tear the final record."""
        log = tmp_path / "slow.jsonl"
        recorder = FlightRecorder()
        recorder.configure(slow_log_path=log, slow_threshold_ms=0.0)
        recorder.enable()
        for i in range(5):
            recorder.record(_profile(k=i, actual_seconds=0.2))
        recorder.close()
        intact = read_jsonl(log)
        assert len(intact.records) == 5 and intact.problem is None

        # Simulate the crash: truncate mid-way through the last record.
        data = log.read_bytes()
        log.write_bytes(data[: len(data) - 7])
        torn = read_jsonl(log)
        assert len(torn.records) == 4
        assert torn.problem is not None
        assert torn.torn_bytes > 0
        assert [r["k"] for r in torn.records] == [0, 1, 2, 3]

        # Garbage appended after valid records is also confined.
        log.write_bytes(data + b"\x00\xffgarbage")
        garbled = read_jsonl(log)
        assert len(garbled.records) == 5
        assert garbled.problem is not None

    def test_read_jsonl_missing_file(self, tmp_path):
        scan = read_jsonl(tmp_path / "absent.jsonl")
        assert scan.problem == "missing"
        assert scan.records == []

    def test_appends_survive_reconfigure(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        recorder = FlightRecorder()
        recorder.configure(slow_log_path=log, slow_threshold_ms=0.0)
        recorder.enable()
        recorder.record(_profile(actual_seconds=0.1))
        recorder.configure(ring_size=8)  # unrelated knob: log untouched
        recorder.record(_profile(actual_seconds=0.1))
        recorder.close()
        assert len(read_jsonl(log).records) == 2


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_residuals_grouped_by_engine(self):
        profiles = [
            # exact: estimates 2x, 1x, 0.5x the actual
            {"engine": "exact", "estimated_seconds": 0.2, "actual_seconds": 0.1},
            {"engine": "exact", "estimated_seconds": 0.1, "actual_seconds": 0.1},
            {"engine": "exact", "estimated_seconds": 0.05, "actual_seconds": 0.1},
            # sampled: single exact prediction
            {"engine": "sampled", "estimated_seconds": 0.3, "actual_seconds": 0.3},
            # not calibratable: missing fields
            {"engine": "exact", "actual_seconds": 0.1},
            {"kind": "exact"},
        ]
        report = calibration_report(profiles)
        assert report["profiles"] == 6
        assert report["calibrated"] == 4
        exact = report["engines"]["exact"]
        assert exact["count"] == 3
        # residuals: +1.0, 0.0, -0.5 -> mean 1/6, median 0.0
        assert exact["mean_relative_error"] == pytest.approx(1.0 / 6.0)
        assert exact["median_relative_error"] == pytest.approx(0.0)
        assert exact["mean_abs_relative_error"] == pytest.approx(0.5)
        assert report["engines"]["sampled"]["count"] == 1
        assert report["engines"]["sampled"]["mean_relative_error"] == 0.0

    def test_recorder_calibration_uses_ring(self):
        recorder = FlightRecorder()
        recorder.enable()
        for _ in range(3):
            recorder.record(
                _profile(
                    engine="exact",
                    estimated_seconds=0.2,
                    actual_seconds=0.1,
                )
            )
        report = recorder.calibration()
        assert report["engines"]["exact"]["count"] == 3
        assert report["engines"]["exact"]["mean_relative_error"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Engine integration via the facade
# ----------------------------------------------------------------------
class TestEngineProfiles:
    def test_exact_query_fills_profile(self):
        db = _query_db()
        obs.enable(fresh=True)
        OBS.flight.enable()
        db.ptk("sightings", k=2, threshold=0.3)
        profiles = OBS.flight.recent()
        assert len(profiles) == 1
        profile = profiles[0]
        assert profile["kind"] == "ptk"
        assert profile["table"] == "sightings"
        assert profile["k"] == 2
        assert profile["engine"] == "exact"
        assert profile["variant"] == "RC+LR"
        assert profile["scan_depth"] >= 1
        assert profile["tuples_evaluated"] >= 1
        assert profile["actual_seconds"] > 0.0
        assert "trace_id" in profile
        assert (
            profile["compression_units_independent"]
            + profile["compression_units_rule"]
            >= 1
        )

    def test_sampled_query_fills_profile(self):
        db = _query_db()
        obs.enable(fresh=True)
        OBS.flight.enable()
        db.ptk_sampled(
            "sightings",
            k=2,
            threshold=0.3,
            config=SamplingConfig(sample_size=200, seed=5),
        )
        profile = OBS.flight.recent()[0]
        assert profile["engine"] == "sampled"
        assert profile["sample_budget"] == 200
        assert profile["sample_units"] >= 1
        assert profile["wilson_halfwidth"] > 0.0
        assert profile["stopped_by"] in ("converged", "budget")

    def test_prepare_outcome_lands_on_profile(self):
        db = _query_db()
        obs.enable(fresh=True)
        OBS.flight.enable()
        db.ptk("sightings", k=2, threshold=0.3)
        db.ptk("sightings", k=2, threshold=0.3)
        first, second = OBS.flight.recent()[::-1][0], OBS.flight.recent()[0]
        assert first["prepare_hit"] is False
        assert second["prepare_hit"] is True

    def test_flight_off_records_nothing(self):
        db = _query_db()
        obs.enable(fresh=True)
        db.ptk("sightings", k=2, threshold=0.3)
        assert OBS.flight.recent() == []

    def test_flight_metrics_published_and_catalogued(self):
        from repro.obs import catalog, export as obs_export

        db = _query_db()
        obs.enable(fresh=True)
        OBS.flight.enable()
        OBS.flight.configure(slow_threshold_ms=0.0)
        db.ptk("sightings", k=2, threshold=0.3)
        counter = OBS.registry.get("repro_flight_profiles_total")
        assert counter is not None
        assert counter.value(kind="ptk") == 1.0
        slow = OBS.registry.get("repro_flight_slow_queries_total")
        assert slow.value() == 1.0
        assert catalog.validate_snapshot(obs_export.snapshot()) == []


# ----------------------------------------------------------------------
# Span-tree export
# ----------------------------------------------------------------------
class TestSpanExport:
    def test_spans_written_once(self, tmp_path):
        db = _query_db()
        obs.enable(fresh=True)
        db.ptk("sightings", k=2, threshold=0.3)
        path = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(path)
        assert len(written) == 1
        # Second call with the dedup set writes nothing new.
        again = write_spans_jsonl(path, skip_trace_ids=set(written))
        assert again == []
        scan = read_jsonl(path)
        assert scan.problem is None
        assert scan.records[0]["name"].startswith("query.")
        assert scan.records[0]["trace_id"] == written[0]


# ----------------------------------------------------------------------
# Summaries and the CLI
# ----------------------------------------------------------------------
class TestSummaryAndCLI:
    def _write_log(self, path):
        records = [
            {"kind": "served", "engine": "exact", "actual_seconds": 0.01,
             "estimated_seconds": 0.02, "slow": True},
            {"kind": "served", "engine": "exact", "actual_seconds": 0.03,
             "estimated_seconds": 0.03, "slow": True},
            {"kind": "served", "engine": "sampled", "actual_seconds": 0.2,
             "estimated_seconds": 0.1, "slow": True, "degraded": True},
        ]
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return records

    def test_summarize_profiles(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        self._write_log(path)
        summary = summarize_profiles(read_jsonl(path).records)
        assert summary["profiles"] == 3
        assert summary["by_engine"] == {"exact": 2, "sampled": 1}
        assert summary["slow"] == 3
        assert summary["degraded"] == 1
        assert summary["latency_seconds"]["max"] == pytest.approx(0.2)

    def test_cli_summary_and_calibration(self, tmp_path, capsys):
        path = tmp_path / "slow.jsonl"
        self._write_log(path)
        assert main(["flight", "summary", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["profiles"] == 3
        # A directory containing slow.jsonl also works.
        assert main(["flight", "calibration", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["engines"]["exact"]["count"] == 2
        assert report["engines"]["sampled"]["median_relative_error"] == (
            pytest.approx(-0.5)
        )

    def test_cli_tail_limits_and_reports_torn_tail(self, tmp_path, capsys):
        path = tmp_path / "slow.jsonl"
        self._write_log(path)
        with open(path, "ab") as handle:
            handle.write(b'{"torn": tr')  # no newline: torn tail
        assert main(["flight", "tail", str(path), "-n", "2"]) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert "torn byte(s) ignored" in captured.err

    def test_cli_missing_file_errors(self, tmp_path, capsys):
        assert main(["flight", "tail", str(tmp_path / "nope.jsonl")]) == 1
        assert "does not exist" in capsys.readouterr().err
