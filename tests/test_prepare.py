"""Tests for the table-level prepared-ranking cache (repro.query.prepare)."""

import pytest

from repro import obs
from repro.core.exact import exact_ptk_query, exact_topk_probabilities
from repro.core.batch import batch_ptk_queries
from repro.core.profile import topk_probability_profile
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.datagen.sensors import panda_table
from repro.obs import export as obs_export
from repro.query.engine import UncertainDB
from repro.query.predicates import AlwaysTrue, ScoreAbove
from repro.query.prepare import (
    PrepareCache,
    prepare_ranking,
    resolve_prepared,
)
from repro.query.ranking import by_score
from repro.query.topk import TopKQuery
from tests.conftest import build_table


class TestPreparedRanking:
    def test_contents(self):
        table = build_table([0.5, 0.3, 0.6], rule_groups=[[1, 2]])
        prepared = prepare_ranking(table, TopKQuery(k=2))
        assert [t.tid for t in prepared.ranked] == ["t0", "t1", "t2"]
        assert set(prepared.rule_of) == {"t1", "t2"}
        [rule_probability] = prepared.rule_probability.values()
        assert rule_probability == pytest.approx(0.9)
        assert len(prepared) == 3
        assert prepared.source_version == table.version

    def test_predicate_applied(self):
        table = build_table([0.5, 0.3, 0.6], rule_groups=[])
        query = TopKQuery(k=2, predicate=ScoreAbove(1.5))
        prepared = prepare_ranking(table, query)
        assert [t.tid for t in prepared.ranked] == ["t0", "t1"]


class TestPrepareCache:
    def test_hit_on_repeat(self):
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        query = TopKQuery(k=2)
        first = cache.get(table, query)
        second = cache.get(table, query)
        assert second is first
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_shared_across_k_and_threshold(self):
        # k and threshold are not part of the key: the preparation only
        # depends on (table, predicate, ranking).
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        a = cache.get(table, TopKQuery(k=1))
        b = cache.get(table, TopKQuery(k=2))
        assert b is a

    def test_structural_predicate_and_ranking_keys_hit(self):
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        a = cache.get(
            table,
            TopKQuery(k=1, predicate=ScoreAbove(0.5), ranking=by_score()),
        )
        b = cache.get(
            table,
            TopKQuery(k=1, predicate=ScoreAbove(0.5), ranking=by_score()),
        )
        assert b is a

    def test_different_predicates_miss(self):
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        cache.get(table, TopKQuery(k=1, predicate=ScoreAbove(0.5)))
        other = cache.get(table, TopKQuery(k=1, predicate=ScoreAbove(1.5)))
        assert len(other.ranked) == 1
        assert cache.stats().misses == 2

    def test_mutation_invalidates_via_version(self):
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        query = TopKQuery(k=2)
        stale = cache.get(table, query)
        table.add("t9", score=99.0, probability=0.7)
        fresh = cache.get(table, query)
        assert fresh is not stale
        assert [t.tid for t in fresh.ranked][0] == "t9"
        assert cache.stats().misses == 2

    def test_lru_eviction(self):
        cache = PrepareCache(max_entries_per_table=2)
        table = build_table([0.5, 0.3], rule_groups=[])
        q1 = TopKQuery(k=1, predicate=ScoreAbove(0.1))
        q2 = TopKQuery(k=1, predicate=ScoreAbove(0.2))
        q3 = TopKQuery(k=1, predicate=ScoreAbove(0.3))
        cache.get(table, q1)
        cache.get(table, q2)
        cache.get(table, q3)  # evicts q1
        assert len(cache) == 2
        cache.get(table, q2)
        cache.get(table, q1)
        assert cache.stats().hits == 1  # only q2 survived for a hit

    def test_invalidate_single_table(self):
        cache = PrepareCache()
        table_a = build_table([0.5], rule_groups=[], name="a")
        table_b = build_table([0.5], rule_groups=[], name="b")
        cache.get(table_a, TopKQuery(k=1))
        cache.get(table_b, TopKQuery(k=1))
        assert cache.invalidate(table_a) == 1
        assert len(cache) == 1
        assert cache.stats().invalidations == 1

    def test_invalidate_all(self):
        cache = PrepareCache()
        table = build_table([0.5], rule_groups=[])
        cache.get(table, TopKQuery(k=1))
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_full_clear_starts_new_counter_epoch(self):
        # A full clear (e.g. after crash recovery swaps the table set)
        # used to leave hit/miss counters accumulating across the reset,
        # so post-restart hit rates mixed two cache lifetimes.
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        query = TopKQuery(k=1)
        cache.get(table, query)
        cache.get(table, query)
        before = cache.stats()
        assert (before.hits, before.misses, before.epoch) == (1, 1, 0)

        dropped = cache.invalidate(None)
        assert dropped == 1
        after = cache.stats()
        assert (after.hits, after.misses) == (0, 0)
        assert after.epoch == 1
        assert after.invalidations == 1  # cumulative, not epoch-scoped
        assert after.hit_rate == 0.0

        # Counters restart cleanly within the new epoch.
        cache.get(table, query)
        cache.get(table, query)
        fresh = cache.stats()
        assert (fresh.hits, fresh.misses, fresh.epoch) == (1, 1, 1)

    def test_single_table_invalidate_keeps_epoch(self):
        cache = PrepareCache()
        table = build_table([0.5], rule_groups=[])
        cache.get(table, TopKQuery(k=1))
        cache.invalidate(table)
        stats = cache.stats()
        assert stats.epoch == 0
        assert stats.misses == 1  # targeted drops don't reset counters

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PrepareCache(max_entries_per_table=0)

    def test_stats_drop_immediately_after_mutation(self):
        # Stale-version entries used to linger in stats()/len() until the
        # next get() purged them lazily; counting must purge (or filter)
        # them itself.
        cache = PrepareCache()
        table = build_table([0.5, 0.3], rule_groups=[])
        cache.get(table, TopKQuery(k=2))
        assert cache.stats().entries == 1
        table.add("t9", score=99.0, probability=0.7)
        assert cache.stats().entries == 0
        assert len(cache) == 0
        # The live count recovers after the next (rebuilding) lookup.
        cache.get(table, TopKQuery(k=2))
        assert cache.stats().entries == 1

    def test_stats_only_counts_live_versions_across_tables(self):
        cache = PrepareCache()
        table_a = build_table([0.5], rule_groups=[], name="a")
        table_b = build_table([0.5], rule_groups=[], name="b")
        cache.get(table_a, TopKQuery(k=1))
        cache.get(table_b, TopKQuery(k=1))
        table_a.add("t9", score=9.0, probability=0.5)
        assert cache.stats().entries == 1
        assert len(cache) == 1

    def test_thread_safe_under_concurrent_lookups_and_mutations(self):
        import threading

        cache = PrepareCache()
        table = build_table([0.5, 0.3, 0.8], rule_groups=[])
        query = TopKQuery(k=2)
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    prepared = cache.get(table, query)
                    assert prepared.source_version <= table.version
                    cache.stats()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def mutate():
            try:
                for i in range(20):
                    table.add(f"m{i}", score=float(i), probability=0.5)
                    cache.invalidate(table)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        threads.append(threading.Thread(target=mutate))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # After the dust settles a fresh lookup serves the final version.
        assert cache.get(table, query).source_version == table.version

    def test_resolve_prefers_explicit_prepared(self):
        cache = PrepareCache()
        table = build_table([0.5], rule_groups=[])
        query = TopKQuery(k=1)
        prepared = prepare_ranking(table, query)
        assert resolve_prepared(table, query, prepared=prepared) is prepared
        assert cache.stats().misses == 0


class TestCachedAnswersIdentical:
    """Answers must be byte-identical with and without the cache."""

    def test_exact_ptk(self):
        table = panda_table()
        query = TopKQuery(k=2)
        baseline = exact_ptk_query(table, query, 0.35)
        cache = PrepareCache()
        for _ in range(2):  # second round runs fully from cache
            cached = exact_ptk_query(table, query, 0.35, cache=cache)
            assert cached.answers == baseline.answers
            assert cached.probabilities == baseline.probabilities
            assert cached.stats.scan_depth == baseline.stats.scan_depth
        assert cache.stats().hits == 1

    def test_sampled_ptk(self):
        table = panda_table()
        query = TopKQuery(k=2)
        config = SamplingConfig(sample_size=500, progressive=False, seed=42)
        baseline = sampled_ptk_query(table, query, 0.35, config=config)
        cache = PrepareCache()
        cached = sampled_ptk_query(table, query, 0.35, config=config, cache=cache)
        assert cached.answers == baseline.answers
        assert cached.probabilities == baseline.probabilities
        # One preparation serves both the estimate pass and the answer.
        assert cache.stats().misses == 1
        assert cache.stats().hits == 0

    def test_profile_and_batch(self):
        table = panda_table()
        query = TopKQuery(k=3)
        baseline = topk_probability_profile(table, query)
        cache = PrepareCache()
        cached = topk_probability_profile(table, query, cache=cache)
        assert set(cached) == set(baseline)
        for tid in baseline:
            assert cached[tid].tolist() == baseline[tid].tolist()
        requests = [(1, 0.5), (3, 0.35), (2, 0.2)]
        batch_baseline = batch_ptk_queries(table, requests)
        batch_cached = batch_ptk_queries(table, requests, cache=cache)
        for a, b in zip(batch_cached, batch_baseline):
            assert a.answers == b.answers
            assert a.probabilities == b.probabilities


class TestBatchStats:
    def test_shared_scan_billed_once(self):
        table = panda_table()
        answers = batch_ptk_queries(table, [(2, 0.5), (2, 0.35), (1, 0.2)])
        n = len(table)
        assert [a.stats.scan_depth for a in answers] == [n, n, n]
        assert [a.stats.tuples_evaluated for a in answers] == [n, 0, 0]


class TestEngineIntegration:
    def test_repeated_ptk_hits_cache(self):
        db = UncertainDB()
        db.register(panda_table())
        first = db.ptk("panda_sightings", k=2, threshold=0.35)
        second = db.ptk("panda_sightings", k=2, threshold=0.35)
        assert second.answers == first.answers
        assert second.probabilities == first.probabilities
        stats = db.prepare_cache.stats()
        assert stats.hits >= 1
        assert stats.misses == 1

    def test_cache_shared_across_query_kinds(self):
        db = UncertainDB()
        db.register(panda_table())
        db.ptk("panda_sightings", k=2, threshold=0.35)
        db.topk_probabilities("panda_sightings", k=2)
        db.ptk_sampled(
            "panda_sightings",
            k=2,
            threshold=0.35,
            config=SamplingConfig(sample_size=50, seed=0),
        )
        stats = db.prepare_cache.stats()
        assert stats.misses == 1
        assert stats.hits == 2

    def test_drop_invalidates(self):
        db = UncertainDB()
        table = panda_table()
        db.register(table)
        db.ptk("panda_sightings", k=2, threshold=0.35)
        assert len(db.prepare_cache) == 1
        db.drop("panda_sightings")
        assert len(db.prepare_cache) == 0
        assert db.prepare_cache.stats().invalidations == 1

    def test_drop_and_reregister_serves_fresh_answers(self):
        db = UncertainDB()
        db.register(panda_table())
        before = db.ptk("panda_sightings", k=2, threshold=0.35)
        db.drop("panda_sightings")
        replacement = build_table(
            [0.9, 0.8], rule_groups=[], name="panda_sightings"
        )
        db.register(replacement)
        after = db.ptk("panda_sightings", k=2, threshold=0.35)
        assert set(after.probabilities) == {"t0", "t1"}
        assert after.answers != before.answers

    def test_mutated_table_served_fresh(self):
        db = UncertainDB()
        table = build_table([0.9, 0.8], rule_groups=[], name="w")
        db.register(table)
        first = db.ptk("w", k=1, threshold=0.5)
        table.add("t9", score=99.0, probability=1.0)
        second = db.ptk("w", k=1, threshold=0.5)
        assert "t9" in second.probabilities
        assert "t9" not in first.probabilities

    def test_ptk_batch_facade(self):
        db = UncertainDB()
        db.register(panda_table())
        answers = db.ptk_batch("panda_sightings", [(2, 0.35), (1, 0.5)])
        direct = batch_ptk_queries(panda_table(), [(2, 0.35), (1, 0.5)])
        assert [a.answers for a in answers] == [a.answers for a in direct]
        # A second batch reuses the cached preparation.
        db.ptk_batch("panda_sightings", [(2, 0.35)])
        assert db.prepare_cache.stats().hits >= 1


class TestObsCounters:
    def test_hit_and_miss_counters_exported(self):
        db = UncertainDB()
        db.register(panda_table())
        with obs.enabled_scope(fresh=True):
            db.ptk("panda_sightings", k=2, threshold=0.35)
            db.ptk("panda_sightings", k=2, threshold=0.35)
            db.drop("panda_sightings")
        metrics = obs_export.snapshot()["metrics"]
        assert (
            metrics["repro_prepare_cache_misses_total"]["samples"][0]["value"]
            == 1
        )
        assert (
            metrics["repro_prepare_cache_hits_total"]["samples"][0]["value"]
            == 1
        )
        assert (
            metrics["repro_prepare_cache_invalidations_total"]["samples"][0][
                "value"
            ]
            == 1
        )

    def test_batched_sampler_counter_exported(self):
        with obs.enabled_scope(fresh=True):
            sampled_ptk_query(
                panda_table(),
                TopKQuery(k=2),
                0.35,
                config=SamplingConfig(
                    sample_size=100, progressive=False, seed=0, batch_size=30
                ),
            )
        metrics = obs_export.snapshot()["metrics"]
        # 100 units at batch 30 -> 4 batches (30+30+30+10).
        assert (
            metrics["repro_sampler_batches_total"]["samples"][0]["value"] == 4
        )
