"""Unit tests for ranking functions and the total order."""

from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.ranking import (
    RankingFunction,
    by_attribute,
    by_probability,
    by_score,
    rank_positions,
)


def make(tid, score, probability=0.5, **attributes):
    return UncertainTuple(
        tid=tid, score=score, probability=probability, attributes=attributes
    )


class TestByScore:
    def test_descending_default(self):
        ranking = by_score()
        ordered = ranking.order([make("a", 1), make("b", 3), make("c", 2)])
        assert [t.tid for t in ordered] == ["b", "c", "a"]

    def test_ascending(self):
        ranking = by_score(descending=False)
        ordered = ranking.order([make("a", 1), make("b", 3), make("c", 2)])
        assert [t.tid for t in ordered] == ["a", "c", "b"]

    def test_tie_broken_by_id(self):
        ranking = by_score()
        ordered = ranking.order([make("z", 5), make("a", 5), make("m", 5)])
        assert [t.tid for t in ordered] == ["a", "m", "z"]

    def test_prefers_is_strict(self):
        ranking = by_score()
        a, b = make("a", 5), make("b", 3)
        assert ranking.prefers(a, b)
        assert not ranking.prefers(b, a)
        assert not ranking.prefers(a, a)


class TestByAttribute:
    def test_orders_by_named_attribute(self):
        ranking = by_attribute("weight")
        ordered = ranking.order(
            [make("a", 0, weight=2), make("b", 0, weight=9)]
        )
        assert [t.tid for t in ordered] == ["b", "a"]

    def test_by_probability(self):
        ranking = by_probability()
        ordered = ranking.order(
            [make("a", 0, probability=0.2), make("b", 0, probability=0.8)]
        )
        assert [t.tid for t in ordered] == ["b", "a"]


class TestTableIntegration:
    def test_rank_table(self):
        table = UncertainTable()
        table.add("x", 1, 0.5)
        table.add("y", 9, 0.5)
        ranked = by_score().rank_table(table)
        assert [t.tid for t in ranked] == ["y", "x"]

    def test_rank_positions(self):
        positions = rank_positions(
            by_score(), [make("a", 1), make("b", 3), make("c", 2)]
        )
        assert positions == {"b": 0, "c": 1, "a": 2}

    def test_custom_key_function(self):
        ranking = RankingFunction(lambda t: t.score * t.probability, name="ep")
        ordered = ranking.order(
            [make("a", 10, probability=0.1), make("b", 5, probability=0.9)]
        )
        assert [t.tid for t in ordered] == ["b", "a"]
