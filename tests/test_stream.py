"""Tests for the sliding-window / monitoring subsystem."""

import pytest

from repro.core.exact import exact_ptk_query
from repro.exceptions import QueryError, ValidationError
from repro.model.tuples import UncertainTuple
from repro.query.topk import TopKQuery
from repro.stream import AnswerDelta, PTKMonitor, SlidingWindowPTK


def detection(tid, score, probability=0.6):
    return UncertainTuple(tid=tid, score=score, probability=probability)


class TestWindowBasics:
    def test_validation(self):
        with pytest.raises(QueryError):
            SlidingWindowPTK(k=0, threshold=0.5, window_size=10)
        with pytest.raises(QueryError):
            SlidingWindowPTK(k=1, threshold=0.0, window_size=10)
        with pytest.raises(QueryError):
            SlidingWindowPTK(k=1, threshold=0.5, window_size=0)

    def test_append_and_len(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=3)
        for i in range(3):
            window.append(detection(f"a{i}", i))
        assert len(window) == 3
        assert window.arrivals == 3

    def test_eviction_keeps_window_size(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=3)
        for i in range(10):
            window.append(detection(f"a{i}", i))
        assert len(window) == 3
        assert window.arrivals == 10
        table = window.snapshot_table()
        assert sorted(t.tid for t in table) == ["a7", "a8", "a9"]

    def test_duplicate_live_id_rejected(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=3)
        window.append(detection("x", 1))
        with pytest.raises(ValidationError):
            window.append(detection("x", 2))

    def test_id_reusable_after_expiry(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=2)
        window.append(detection("x", 1))
        window.append(detection("y", 2))
        window.append(detection("z", 3))  # x expires
        window.append(detection("x", 4))  # fine again
        assert len(window) == 2


class TestWindowRules:
    def test_rule_mass_enforced(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=10)
        window.append(detection("a", 1, 0.6), rule_tag="g")
        with pytest.raises(ValidationError):
            window.append(detection("b", 2, 0.6), rule_tag="g")

    def test_rule_mass_released_on_expiry(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=2)
        window.append(detection("a", 1, 0.6), rule_tag="g")
        window.append(detection("pad", 0, 0.5))
        window.append(detection("pad2", 0, 0.5))  # a expired
        window.append(detection("b", 2, 0.9), rule_tag="g")  # ok now
        assert len(window) == 2

    def test_snapshot_builds_rules(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=10)
        window.append(detection("a", 3, 0.4), rule_tag="g")
        window.append(detection("b", 2, 0.4), rule_tag="g")
        window.append(detection("c", 1, 0.9))
        table = window.snapshot_table()
        rules = table.multi_rules()
        assert len(rules) == 1
        assert set(rules[0].tuple_ids) == {"a", "b"}

    def test_singleton_group_makes_no_rule(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=10)
        window.append(detection("a", 3, 0.4), rule_tag="g")
        assert window.snapshot_table().multi_rules() == []


class TestWindowAnswers:
    def test_answer_matches_batch(self):
        window = SlidingWindowPTK(k=2, threshold=0.4, window_size=5)
        scores = [5, 9, 2, 7, 4]
        for i, s in enumerate(scores):
            window.append(detection(f"a{i}", s, 0.5 + 0.05 * i))
        streaming = window.answer()
        batch = exact_ptk_query(window.snapshot_table(), TopKQuery(k=2), 0.4)
        assert streaming.answer_set == batch.answer_set

    def test_answer_cached_between_changes(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        window.append(detection("a", 1, 0.9))
        first = window.answer()
        assert window.answer() is first  # same object: cache hit
        window.append(detection("b", 2, 0.9))
        assert window.answer() is not first

    def test_extend_with_tags(self):
        window = SlidingWindowPTK(k=2, threshold=0.3, window_size=10)
        window.extend(
            [detection("a", 3, 0.4), detection("b", 2, 0.4)],
            rule_tags=["g", "g"],
        )
        assert len(window.snapshot_table().multi_rules()) == 1

    def test_version_monotone(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=2)
        versions = [window.version]
        for i in range(4):
            window.append(detection(f"a{i}", i))
            versions.append(window.version)
        assert versions == sorted(set(versions))


class TestMonitor:
    def test_delta_on_entry(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        monitor = PTKMonitor(window)
        delta = monitor.observe(detection("a", 5, 0.9))
        assert delta.entered == frozenset({"a"})
        assert delta.left == frozenset()
        assert delta.changed

    def test_delta_on_displacement(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 5, 0.9))
        delta = monitor.observe(detection("b", 9, 0.95))
        assert "b" in delta.entered
        assert "a" in delta.left

    def test_no_change_delta(self):
        window = SlidingWindowPTK(k=1, threshold=0.9, window_size=5)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 5, 0.95))
        delta = monitor.observe(detection("weak", 1, 0.05))
        assert not delta.changed

    def test_history_and_churn(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 5, 0.9))
        monitor.observe(detection("b", 9, 0.95))
        assert len(monitor.history) == 2
        assert monitor.churn() == 3  # a entered, then b entered + a left
        assert monitor.current_answer == {"b"}

    def test_expiry_triggers_left_delta(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=2)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 9, 0.9))
        monitor.observe(detection("b", 1, 0.9))
        delta = monitor.observe(detection("c", 2, 0.9))  # a expires
        assert "a" in delta.left

    def test_monitor_on_prefilled_window(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        window.append(detection("a", 5, 0.9))
        monitor = PTKMonitor(window)
        assert monitor.current_answer == {"a"}
        delta = monitor.observe(detection("weak", 1, 0.05))
        assert not delta.changed


class TestMonitorTimerOnError:
    """Regression: a rejected arrival must not leak the advance timer."""

    def test_timer_recorded_when_append_raises(self):
        from repro import obs

        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        monitor = PTKMonitor(window)
        with obs.enabled_scope(fresh=True):
            timer = obs.catalogued("repro_stream_advance_seconds")
            monitor.observe(detection("a", 5, 0.9))
            with pytest.raises(ValidationError):
                monitor.observe(detection("a", 6, 0.9))  # duplicate live id
            # The failed advance still closed (and recorded) its timing.
            assert timer.count() == 2
            # The monitor keeps working after the error.
            delta = monitor.observe(detection("b", 9, 0.95))
            assert timer.count() == 3
            assert "b" in delta.entered
        assert monitor.current_answer == {"b"}

    def test_rejected_arrival_leaves_no_history(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=5)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 5, 0.9))
        with pytest.raises(ValidationError):
            monitor.observe(detection("a", 6, 0.9))
        assert len(monitor.history) == 1


class TestEvictTagAccounting:
    """Regression: a tag must survive eviction while live members carry it."""

    def test_tiny_probability_member_keeps_tag_alive(self):
        # "a" (mass 0.6) and "tiny" (5e-10, below PROBABILITY_ATOL) share
        # a tag.  When "a" expires, the remaining mass is ~0 but "tiny"
        # is still live: the tag must not be forgotten.
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=2)
        window.append(detection("a", 1, 0.6), rule_tag="g")
        window.append(detection("tiny", 2, 5e-10), rule_tag="g")
        window.append(detection("pad", 3, 0.5))  # evicts "a"
        assert "g" in window._rule_mass
        assert window._rule_mass["g"] == pytest.approx(5e-10, abs=1e-12)
        # The surviving accounting still enforces the <= 1 constraint.
        window.append(detection("b", 4, 0.999), rule_tag="g")  # evicts "tiny"
        with pytest.raises(ValidationError):
            window.append(detection("c", 5, 0.5), rule_tag="g")

    def test_no_keyerror_when_tagged_members_outlive_depleted_mass(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=2)
        window.append(detection("a", 1, 0.9), rule_tag="g")
        window.append(detection("tiny", 2, 1e-10), rule_tag="g")
        window.append(detection("pad", 3, 0.5))   # evicts "a" (mass -> ~0)
        window.append(detection("pad2", 4, 0.5))  # evicts "tiny" (same tag)
        assert len(window) == 2

    def test_tag_forgotten_once_last_member_leaves(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=1)
        window.append(detection("a", 1, 0.9), rule_tag="g")
        window.append(detection("b", 2, 0.1))  # evicts "a", tag gone
        # Full 0.95 mass available again under the same tag.
        window.append(detection("c", 3, 0.95), rule_tag="g")
        assert len(window) == 1

    def test_mass_never_negative_after_float_cancellation(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=3)
        window.append(detection("a", 1, 0.3), rule_tag="g")
        window.append(detection("b", 2, 0.1), rule_tag="g")
        window.append(detection("c", 3, 0.2), rule_tag="g")
        window.append(detection("d", 4, 0.25), rule_tag="g")  # evicts "a"
        window.append(detection("e", 5, 0.4), rule_tag="g")   # evicts "b"
        assert window._rule_mass["g"] >= 0.0


class TestMonitorQuietBursts:
    """History records answer changes, not arrivals: a burst of weak
    tuples that never perturbs the answer must not accumulate entries."""

    def test_unchanging_burst_leaves_history_empty(self):
        window = SlidingWindowPTK(k=1, threshold=0.9, window_size=100)
        monitor = PTKMonitor(window)
        monitor.observe(detection("strong", 100, 0.95))
        assert len(monitor.history) == 1
        for i in range(30):
            delta = monitor.observe(detection(f"weak{i}", 1, 0.05))
            assert not delta.changed
        assert len(monitor.history) == 1  # no empty deltas accumulated
        assert monitor.churn() == 1  # only the original entry

    def test_observe_still_reports_every_arrival(self):
        window = SlidingWindowPTK(k=1, threshold=0.9, window_size=100)
        monitor = PTKMonitor(window)
        monitor.observe(detection("strong", 100, 0.95))
        delta = monitor.observe(detection("weak", 1, 0.05))
        # The return value is per-arrival even when nothing changed...
        assert delta.arrival == "weak"
        assert delta.answer_size == 1
        # ...but quiet arrivals are not recorded.
        assert [d.arrival for d in monitor.history] == ["strong"]

    def test_history_interleaves_only_changes(self):
        window = SlidingWindowPTK(k=1, threshold=0.5, window_size=100)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 10, 0.9))       # enters
        monitor.observe(detection("weak0", 1, 0.05))   # quiet
        monitor.observe(detection("b", 20, 0.95))      # displaces a
        monitor.observe(detection("weak1", 1, 0.05))   # quiet
        assert [d.arrival for d in monitor.history] == ["a", "b"]
        assert all(d.changed for d in monitor.history)
        assert monitor.churn() == 3

    def test_churn_unaffected_by_quiet_arrivals(self):
        window = SlidingWindowPTK(k=2, threshold=0.5, window_size=50)
        monitor = PTKMonitor(window)
        monitor.observe(detection("a", 10, 0.9))
        churn_before = monitor.churn()
        for i in range(10):
            monitor.observe(detection(f"w{i}", 0.1, 0.01))
        assert monitor.churn() == churn_before


class TestAnswerDeltaChanged:
    def test_changed_false_when_both_sides_empty(self):
        delta = AnswerDelta(arrival="x")
        assert not delta.changed

    def test_changed_true_on_entry_only(self):
        delta = AnswerDelta(arrival="x", entered=frozenset({"a"}))
        assert delta.changed

    def test_changed_true_on_exit_only(self):
        delta = AnswerDelta(arrival="x", left=frozenset({"a"}))
        assert delta.changed

    def test_changed_true_on_swap(self):
        delta = AnswerDelta(
            arrival="x", entered=frozenset({"a"}), left=frozenset({"b"})
        )
        assert delta.changed
