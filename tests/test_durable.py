"""Tests for the durable storage subsystem (repro.durable).

Covers the WAL record format and torn-tail truncation, snapshot
round-trips and corruption fallback, recovery invariants (exact
contents, rule tags, and ``version``), the ``DurableDB`` wrapper,
prepare-cache warm start, the crash-recovery property test with
randomized kill points (including mid-record torn writes), a real
SIGKILL round-trip, and the ``repro durable`` CLI subcommands.
"""

from __future__ import annotations

import json
import os
import random
import signal
import struct
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.exact import exact_ptk_query
from repro.durable import (
    DurableDB,
    WriteAheadLog,
    read_snapshot,
    recover_state,
    replay_wal,
    scan_segment,
    verify_data_dir,
    write_snapshot,
)
from repro.durable.snapshot import (
    catalog_snapshots,
    compact_snapshots,
    serialize_table,
)
from repro.durable.wal import MAGIC, encode_record
from repro.exceptions import (
    DurabilityError,
    RecoveryError,
    SnapshotCorruptionError,
    WalCorruptionError,
)
from repro.model.table import UncertainTable, table_from_rows
from repro.query.topk import TopKQuery

from tests.conftest import build_table


def sample_table(name: str = "demo") -> UncertainTable:
    """A small table with rules, attributes, and a tuple-typed tid."""
    table = UncertainTable(name=name)
    table.add("t1", 100.0, 0.5, location="A")
    table.add("t2", 90.0, 0.4)
    table.add("t3", 80.0, 0.45, location="B", day=3)
    table.add(("s", 7), 70.0, 0.3)
    table.add("t5", 60.0, 0.25)
    table.add_exclusive("r1", "t1", "t2")
    table.add_exclusive("r2", "t3", "t5")
    return table


def assert_tables_equal(actual: UncertainTable, expected: UncertainTable):
    """Contents, attributes, rule tags, and version must all match."""
    assert [t.tid for t in actual] == [t.tid for t in expected]
    for mine, theirs in zip(actual, expected):
        assert mine.score == theirs.score
        assert mine.probability == theirs.probability
        assert dict(mine.attributes) == dict(theirs.attributes)
    assert {
        r.rule_id: frozenset(r.tuple_ids) for r in actual.multi_rules()
    } == {r.rule_id: frozenset(r.tuple_ids) for r in expected.multi_rules()}
    assert actual.version == expected.version
    actual.validate()


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWal:
    def test_append_and_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        records = [
            {"op": "add", "table": "t", "version": i, "tid": f"x{i}"}
            for i in range(10)
        ]
        for record in records:
            wal.append(record)
        wal.close()
        replayed, scans, _ = replay_wal(tmp_path)
        assert replayed == records
        assert all(scan.torn_bytes == 0 for scan in scans)

    def test_tuple_tids_round_trip(self, tmp_path):
        from repro.durable.wal import decode_tid, encode_tid

        for tid in ["a", 7, ("a", 3), ("x", ("y", 1))]:
            assert decode_tid(json.loads(json.dumps(encode_tid(tid)))) == tid

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(DurabilityError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_fsync_always_syncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        before = wal.fsyncs
        for i in range(5):
            wal.append({"op": "add", "version": i})
        assert wal.fsyncs - before == 5
        wal.close()

    def test_fsync_off_only_syncs_on_lifecycle(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        opened = wal.fsyncs
        for i in range(50):
            wal.append({"op": "add", "version": i})
        assert wal.fsyncs == opened
        wal.close()

    def test_new_segment_per_open(self, tmp_path):
        WriteAheadLog(tmp_path, fsync="off").close()
        WriteAheadLog(tmp_path, fsync="off").close()
        assert len(WriteAheadLog.segment_paths(tmp_path)) == 2

    def test_rotate_and_compact(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"op": "add", "version": 1})
        wal.rotate()
        wal.append({"op": "add", "version": 2})
        assert len(WriteAheadLog.segment_paths(tmp_path)) == 2
        assert wal.drop_segments_before(wal.path) == 1
        records, _, _ = replay_wal(tmp_path)
        assert [r["version"] for r in records] == [2]
        wal.close()

    def test_segment_order_past_six_digit_sequences(self, tmp_path):
        """Segments must order by integer sequence, not path string:
        'wal-1000000.log' sorts lexicographically before 'wal-999999.log'."""
        older = tmp_path / "wal-999999.log"
        newer = tmp_path / "wal-1000000.log"
        older.write_bytes(MAGIC + encode_record({"op": "add", "version": 1}))
        newer.write_bytes(MAGIC + encode_record({"op": "add", "version": 2}))
        assert WriteAheadLog.segment_paths(tmp_path) == [older, newer]
        records, _, paths = replay_wal(tmp_path)
        assert [r["version"] for r in records] == [1, 2]
        assert paths == [older, newer]

        wal = WriteAheadLog(tmp_path, fsync="off")  # continues the sequence
        assert wal.path.name == "wal-1000001.log"
        assert wal.drop_segments_before(wal.path) == 2
        assert not older.exists() and not newer.exists()
        wal.close()


class TestForeignFilesAndRotation:
    """Satellites of the replication PR: WAL-directory hygiene and
    size-based auto-rotation."""

    def test_segment_paths_tolerate_foreign_files(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"op": "add", "version": 1})
        wal.close()
        (tmp_path / "wal-000099.log.tmp").write_bytes(b"half-renamed")
        (tmp_path / "notes.txt").write_text("operator scribbles")
        (tmp_path / "wal-abcdef.log").write_bytes(b"unparseable name")
        (tmp_path / "wal-000500.log").mkdir()  # directory, segment-shaped name
        assert WriteAheadLog.segment_paths(tmp_path) == [wal.path]
        assert WriteAheadLog.sequence_of(tmp_path / "wal-abcdef.log") == -1
        records, scans, paths = replay_wal(tmp_path)
        assert [r["version"] for r in records] == [1]
        assert paths == [wal.path]

    def test_writer_skips_past_segment_shaped_directory(self, tmp_path):
        """A directory named like a future segment must push the writer
        past its sequence — exclusive create would collide otherwise."""
        (tmp_path / "wal-000500.log").mkdir()
        wal = WriteAheadLog(tmp_path, fsync="off")
        assert wal.sequence > 500
        wal.append({"op": "add", "version": 1})
        wal.close()
        records, _, _ = replay_wal(tmp_path)
        assert [r["version"] for r in records] == [1]

    def test_rejects_max_segment_bytes_below_header(self, tmp_path):
        with pytest.raises(DurabilityError):
            WriteAheadLog(tmp_path, max_segment_bytes=4)

    def test_auto_rotation_by_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", max_segment_bytes=256)
        records = [
            {"op": "add", "version": i, "pad": "x" * 40} for i in range(30)
        ]
        for record in records:
            wal.append(record)
        assert wal.rotations > 0
        assert (
            len(WriteAheadLog.segment_paths(tmp_path)) == wal.rotations + 1
        )
        replayed, scans, _ = replay_wal(tmp_path)
        assert replayed == records
        assert all(scan.torn_bytes == 0 for scan in scans)
        wal.close()

    def test_durabledb_auto_rotation_survives_recovery(self, tmp_path):
        with DurableDB(
            tmp_path, fsync="off", max_segment_bytes=512
        ) as db:
            db.register(sample_table("r"))
            for i in range(60):
                db.add("r", f"n{i}", score=float(i), probability=0.5)
            rotations = db.wal.rotations
            expected_version = db.table("r").version
        assert rotations > 0
        tables, report = recover_state(tmp_path)
        assert len(tables["r"]) == len(sample_table("r")) + 60
        assert tables["r"].version == expected_version
        assert not report.problems


class TestTornTail:
    def make_segment(self, tmp_path, n=5):
        wal = WriteAheadLog(tmp_path, fsync="off")
        for i in range(n):
            wal.append({"op": "add", "version": i, "pad": "y" * 40})
        wal.close()
        return wal.path

    @pytest.mark.parametrize("chop", [1, 3, 7, 11, 25])
    def test_truncated_tail_drops_only_last_record(self, tmp_path, chop):
        path = self.make_segment(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-chop])
        scan = scan_segment(path)
        assert not scan.corrupt
        assert scan.torn_bytes > 0
        assert [r["version"] for r in scan.records] == [0, 1, 2, 3]

    def test_flipped_tail_byte_is_torn_not_corrupt(self, tmp_path):
        path = self.make_segment(tmp_path, n=3)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # inside the final record's payload
        path.write_bytes(bytes(data))
        scan = scan_segment(path)
        assert not scan.corrupt
        assert scan.problem is not None
        assert [r["version"] for r in scan.records] == [0, 1]

    def test_torn_magic_is_empty_not_corrupt(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        path.write_bytes(MAGIC[:3])
        scan = scan_segment(path)
        assert not scan.corrupt
        assert scan.records == []
        assert scan.torn_bytes == 3

    def test_bad_magic_is_corrupt(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        path.write_bytes(b"NOTAWAL!" + b"junk")
        assert scan_segment(path).corrupt
        with pytest.raises(WalCorruptionError):
            replay_wal(tmp_path)

    def test_crc_valid_non_json_is_corrupt(self, tmp_path):
        payload = b"definitely not json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / "wal-000001.log"
        path.write_bytes(MAGIC + frame)
        scan = scan_segment(path)
        assert scan.corrupt

    def test_recovery_replays_prefix_before_torn_tail(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.add("demo", "late", 10.0, 0.2)
        db.close()
        segment = WriteAheadLog.segment_paths(tmp_path / "wal")[0]
        segment.write_bytes(segment.read_bytes()[:-4])  # tear the add
        tables, report = recover_state(tmp_path)
        assert "late" not in tables["demo"]
        assert report.torn_bytes > 0
        assert report.problems


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_round_trip_preserves_everything(self, tmp_path):
        table = sample_table()
        table.remove_tuple("t5")  # version drifts ahead of tuple count
        path = write_snapshot(table, tmp_path)
        loaded, name = read_snapshot(path)
        assert name == "demo"
        assert_tables_equal(loaded, table)

    def test_registry_name_differs_from_table_name(self, tmp_path):
        table = sample_table(name="internal")
        path = write_snapshot(table, tmp_path, name="registry")
        loaded, name = read_snapshot(path)
        assert name == "registry"
        assert loaded.name == "internal"

    def test_serialized_image_is_deterministic(self):
        table = sample_table()
        assert serialize_table(table) == serialize_table(table)

    def test_crc_corruption_detected(self, tmp_path):
        path = write_snapshot(sample_table(), tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptionError):
            read_snapshot(path)

    def test_corrupt_latest_falls_back_to_older_generation(self, tmp_path):
        from repro.durable.snapshot import load_latest_snapshots

        table = sample_table()
        write_snapshot(table, tmp_path)
        version_v1 = table.version
        table.add("extra", 5.0, 0.1)
        newest = write_snapshot(table, tmp_path)
        data = bytearray(newest.read_bytes())
        data[-3] ^= 0xFF
        newest.write_bytes(bytes(data))
        tables, problems, _ = load_latest_snapshots(tmp_path)
        assert tables["demo"].version == version_v1
        assert problems

    def test_compact_keeps_newest_generation(self, tmp_path):
        table = sample_table()
        write_snapshot(table, tmp_path)
        table.add("extra", 5.0, 0.1)
        newest = write_snapshot(table, tmp_path)
        assert compact_snapshots(tmp_path) == 1
        catalog = catalog_snapshots(tmp_path)
        assert catalog.latest["demo"][0] == newest

    def test_no_partial_file_visible(self, tmp_path):
        write_snapshot(sample_table(), tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Recovery invariants
# ----------------------------------------------------------------------
class TestRecovery:
    def test_wal_only_recovery_restores_exact_state(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        table = sample_table()
        db.register(table)
        db.add("demo", "t6", 55.0, 0.6, location="C")
        db.remove_tuple("demo", "t2")  # shrinks rule r1 to a singleton
        db.update_probability("demo", "t6", 0.7)
        db.close()

        recovered = DurableDB(tmp_path, fsync="off")
        assert_tables_equal(recovered.table("demo"), table)
        recovered.close()

    def test_snapshot_plus_replay(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        table = sample_table()
        db.register(table)
        db.snapshot()
        db.add("demo", "after", 55.0, 0.6)
        db.close()

        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.last_recovery.snapshots_loaded == 1
        assert recovered.last_recovery.replayed == 1
        assert_tables_equal(recovered.table("demo"), table)
        recovered.close()

    def test_replay_is_version_gated_after_uncompacted_snapshot(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.add("demo", "kept", 55.0, 0.6)
        # Snapshot without compaction: the old segment with the register
        # and add records survives and must be skipped on replay.
        db.snapshot(compact=False)
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        report = recovered.last_recovery
        assert report.replayed == 0
        assert report.skipped >= 2
        assert "kept" in recovered.table("demo")
        recovered.close()

    def test_drop_survives_restart(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.drop("demo")
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.tables() == []
        recovered.close()

    def test_reregister_after_drop(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.drop("demo")
        replacement = table_from_rows([("n1", 10, 0.5)], name="demo")
        db.register(replacement)
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.table("demo").tuple_ids() == ["n1"]
        recovered.close()

    def test_drop_then_snapshot_then_restart(self, tmp_path):
        """Compacting away the 'drop' record must not resurrect the
        table from its surviving snapshot files."""
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.snapshot()  # dropped table now has an on-disk image
        db.drop("demo")
        db.snapshot()  # compacts the segment holding the drop record
        db.close()
        assert not list((tmp_path / "snapshots").glob("*.snap"))
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.tables() == []
        recovered.close()

    @pytest.mark.parametrize("compact", [True, False])
    def test_reregister_lower_version_survives_snapshot_restart(
        self, tmp_path, compact
    ):
        """A replacement registered after a drop restarts at a low
        version; its higher registration epoch must outrank the dropped
        predecessor's high-version snapshot, with and without
        compaction."""
        db = DurableDB(tmp_path, fsync="off")
        original = sample_table()
        db.register(original)
        db.snapshot()
        db.drop("demo")
        replacement = table_from_rows([("n1", 10, 0.5)], name="demo")
        assert replacement.version < original.version
        db.register(replacement)
        db.snapshot(compact=compact)
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.table("demo").tuple_ids() == ["n1"]
        assert recovered.table("demo").version == replacement.version
        recovered.close()

    def test_version_gap_raises(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        table = sample_table()
        db.register(table)
        db.close()
        wal_dir = tmp_path / "wal"
        segment = WriteAheadLog.segment_paths(wal_dir)[0]
        with open(segment, "ab") as handle:
            handle.write(
                encode_record(
                    {
                        "op": "add",
                        "table": "demo",
                        "version": table.version + 2,  # gap
                        "tid": "ghost",
                        "score": 1.0,
                        "probability": 0.1,
                    }
                )
            )
        with pytest.raises(RecoveryError):
            recover_state(tmp_path)

    def test_mutation_on_unknown_table_raises(self, tmp_path):
        (tmp_path / "wal").mkdir()
        path = tmp_path / "wal" / "wal-000001.log"
        record = encode_record(
            {"op": "remove", "table": "ghost", "version": 1, "tid": "t"}
        )
        path.write_bytes(MAGIC + record)
        with pytest.raises(RecoveryError):
            recover_state(tmp_path)

    def test_ptk_answers_identical_after_recovery(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        table = build_table(
            [0.5, 0.45, 0.4, 0.35, 0.3, 0.6, 0.2], [[0, 1], [2, 3]],
            name="answers",
        )
        db.register(table)
        db.remove_tuple("answers", "t4")
        before = db.ptk("answers", k=3, threshold=0.2)
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        after = recovered.ptk("answers", k=3, threshold=0.2)
        assert after.answers == before.answers
        assert after.probabilities == pytest.approx(before.probabilities)
        recovered.close()


# ----------------------------------------------------------------------
# DurableDB behaviour
# ----------------------------------------------------------------------
class TestDurableDB:
    def test_mutations_validate_before_journalling(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        appended = db.wal.appended_records
        with pytest.raises(Exception):
            db.add("demo", "t1", 1.0, 0.5)  # duplicate tid
        assert db.wal.appended_records == appended  # nothing journalled
        db.close()

    def test_serve_keys_warm_prepare_cache(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.ptk("demo", k=2, threshold=0.3)
        db.close()

        recovered = DurableDB(tmp_path, fsync="off", warm_start=True)
        stats = recovered.prepare_cache.stats()
        assert stats.misses == 1  # warm start prepared it
        recovered.ptk("demo", k=2, threshold=0.3)
        assert recovered.prepare_cache.stats().hits == 1
        recovered.close()

    def test_warm_start_disabled(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.ptk("demo", k=2, threshold=0.3)
        db.close()
        cold = DurableDB(tmp_path, fsync="off", warm_start=False)
        assert cold.prepare_cache.stats().misses == 0
        cold.close()

    def test_serve_key_journalled_once_per_segment(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        before = db.wal.appended_records
        for _ in range(5):
            db.ptk("demo", k=2, threshold=0.3)
        assert db.wal.appended_records == before + 1
        db.close()

    def test_serve_keys_survive_snapshot_compaction(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.ptk("demo", k=2, threshold=0.3)
        db.snapshot()  # compacts the segment holding the serve record
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.last_recovery.serve_keys == [("demo", 2, None)]
        recovered.close()

    def test_serve_keys_for_dropped_table_skipped(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.ptk("demo", k=2, threshold=0.3)
        db.drop("demo")
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")  # must not raise
        assert recovered.tables() == []
        recovered.close()

    def test_deferred_serve_keys_journal_on_flush(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        before = db.wal.appended_records
        db.note_served("demo", 2, defer=True)
        db.note_served("demo", 2, defer=True)  # deduped in the buffer
        assert db.wal.appended_records == before  # nothing inline
        assert db.flush_serves() == 1
        assert db.wal.appended_records == before + 1
        assert db.flush_serves() == 0  # once per segment, as inline
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert ("demo", 2, None) in recovered.last_recovery.serve_keys
        recovered.close()

    def test_close_flushes_deferred_serve_keys(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        db.note_served("demo", 3, defer=True)
        db.close()  # flush happens here, then again harmlessly
        assert db.flush_serves() == 0
        recovered = DurableDB(tmp_path, fsync="off")
        assert ("demo", 3, None) in recovered.last_recovery.serve_keys
        recovered.close()

    def test_opaque_query_not_journalled(self, tmp_path):
        from repro.query.predicates import ScoreAbove

        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        before = db.wal.appended_records
        db.ptk("demo", k=2, threshold=0.3,
               query=TopKQuery(k=2, predicate=ScoreAbove(65.0)))
        assert db.wal.appended_records == before
        db.close()

    def test_snapshot_bounds_recovery_to_snapshot_read(self, tmp_path):
        db = DurableDB(tmp_path, fsync="off")
        db.register(sample_table())
        for i in range(20):
            db.add("demo", f"bulk{i}", float(i), 0.3)
        db.snapshot()
        db.close()
        recovered = DurableDB(tmp_path, fsync="off")
        assert recovered.last_recovery.replayed == 0
        assert len(recovered.table("demo")) == 25
        recovered.close()

    def test_durable_metrics_catalogued(self, tmp_path):
        from repro import obs
        from repro.obs import catalog
        from repro.obs import export as obs_export

        obs.enable(fresh=True)
        try:
            db = DurableDB(tmp_path, fsync="always")
            db.register(sample_table())
            db.add("demo", "m1", 1.0, 0.2)
            db.snapshot()
            db.close()
            DurableDB(tmp_path, fsync="off").close()
            snapshot = json.loads(obs_export.to_json())
            assert catalog.validate_snapshot(snapshot) == []
            names = snapshot["metrics"]
            for required in (
                "repro_durable_wal_appends_total",
                "repro_durable_wal_bytes_total",
                "repro_durable_wal_fsyncs_total",
                "repro_durable_snapshot_seconds",
                "repro_durable_snapshot_bytes",
            ):
                assert required in names, required
        finally:
            obs.disable()
            obs.reset()

    def test_context_manager_closes_wal(self, tmp_path):
        with DurableDB(tmp_path, fsync="off") as db:
            db.register(sample_table())
        with pytest.raises(DurabilityError):
            db.wal.append({"op": "drop", "table": "demo"})


# ----------------------------------------------------------------------
# Crash-recovery property test
# ----------------------------------------------------------------------
def _random_mutations(rng: random.Random, steps: int):
    """A valid randomized mutation script as (op, args) tuples.

    Applied twice — once through DurableDB (journalled) and once on a
    fresh in-memory table (the oracle) — so recovery is compared against
    an independent application path.
    """
    ops = []
    live = {}  # tid -> probability
    ruled = set()
    counter = 0
    for _ in range(steps):
        choice = rng.random()
        if choice < 0.45 or len(live) < 4:
            tid = f"m{counter}"
            counter += 1
            probability = round(rng.uniform(0.05, 0.6), 3)
            attributes = (
                {"loc": rng.choice("ABC")} if rng.random() < 0.3 else {}
            )
            ops.append(
                ("add", tid, round(rng.uniform(1, 100), 3), probability,
                 attributes)
            )
            live[tid] = probability
        elif choice < 0.6:
            free = [t for t in live if t not in ruled]
            rng.shuffle(free)
            members, total = [], 0.0
            for tid in free:
                if total + live[tid] <= 0.95:
                    members.append(tid)
                    total += live[tid]
                if len(members) == 3:
                    break
            if len(members) >= 2:
                ops.append(("rule", f"r{counter}", tuple(members)))
                counter += 1
                ruled.update(members)
        elif choice < 0.8:
            tid = rng.choice(sorted(live))
            ops.append(("remove", tid))
            del live[tid]
            ruled.discard(tid)
        else:
            free = [t for t in live if t not in ruled]
            if free:
                tid = rng.choice(sorted(free))
                probability = round(rng.uniform(0.05, 0.9), 3)
                ops.append(("update", tid, probability))
                live[tid] = probability
    return ops


def _apply_to_oracle(table: UncertainTable, op):
    kind = op[0]
    if kind == "add":
        _, tid, score, probability, attributes = op
        table.add(tid, score, probability, **attributes)
    elif kind == "rule":
        table.add_exclusive(op[1], *op[2])
    elif kind == "remove":
        table.remove_tuple(op[1])
    elif kind == "update":
        table.update_probability(op[1], op[2])


def _apply_to_durable(db: DurableDB, name: str, op):
    kind = op[0]
    if kind == "add":
        _, tid, score, probability, attributes = op
        db.add(name, tid, score, probability, **attributes)
    elif kind == "rule":
        db.add_exclusive(name, op[1], *op[2])
    elif kind == "remove":
        db.remove_tuple(name, op[1])
    elif kind == "update":
        db.update_probability(name, op[1], op[2])


@pytest.mark.parametrize("seed", [3, 11, 29, 47])
def test_crash_recovery_property(tmp_path, seed):
    """For random mutations and a random kill point (possibly mid-record),
    recovery equals the in-memory state at the last durable point and
    PT-k answers on it are identical."""
    rng = random.Random(seed)
    base_rows = [("b1", 50.0, 0.5), ("b2", 40.0, 0.45), ("b3", 30.0, 0.4)]
    ops = _random_mutations(rng, steps=40)

    victim_dir = tmp_path / "victim"
    db = DurableDB(victim_dir, fsync="off")
    db.register(table_from_rows(base_rows, name="prop"))
    offsets = [db.wal.tell]  # durable point after the register record
    for op in ops:
        _apply_to_durable(db, "prop", op)
        offsets.append(db.wal.tell)
    total = db.wal.tell
    segment_bytes = db.wal.path.read_bytes()
    db.close()
    assert len(segment_bytes) == total

    for trial in range(6):
        cut = rng.randint(0, total)
        # Number of whole mutations (after the register) that fit.
        durable_ops = 0
        registered = cut >= offsets[0]
        if registered:
            while (
                durable_ops < len(ops) and offsets[durable_ops + 1] <= cut
            ):
                durable_ops += 1

        crash_dir = tmp_path / f"crash-{trial}"
        (crash_dir / "wal").mkdir(parents=True)
        (crash_dir / "wal" / "wal-000001.log").write_bytes(
            segment_bytes[:cut]
        )
        tables, report = recover_state(crash_dir)
        if not registered:
            assert tables == {}
            continue
        oracle = table_from_rows(base_rows, name="prop")
        for op in ops[:durable_ops]:
            _apply_to_oracle(oracle, op)
        assert_tables_equal(tables["prop"], oracle)
        if len(oracle) >= 3:
            mine = exact_ptk_query(tables["prop"], TopKQuery(k=3), 0.25)
            theirs = exact_ptk_query(oracle, TopKQuery(k=3), 0.25)
            assert mine.answers == theirs.answers
            assert mine.probabilities == pytest.approx(theirs.probabilities)


# ----------------------------------------------------------------------
# Real SIGKILL round-trip
# ----------------------------------------------------------------------
_KILL_SCRIPT = """
import sys
from repro.durable import DurableDB
from repro.model.table import table_from_rows

db = DurableDB(sys.argv[1], fsync="off")
db.register(table_from_rows(
    [("b1", 50.0, 0.5), ("b2", 40.0, 0.45)], name="killed"))
print("READY", flush=True)
i = 0
while True:
    db.add("killed", f"x{i}", float(i % 97), 0.3)
    i += 1
"""


def test_sigkill_mid_append_recovers_consistent_prefix(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(tmp_path)],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        assert process.stdout.readline().strip() == b"READY"
        time.sleep(0.4)  # let it append a few thousand records
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait()

    tables, report = recover_state(tmp_path)
    table = tables["killed"]
    table.validate()
    n_added = len(table) - 2
    assert n_added >= 1
    # Appends are sequential, so the recovered tuples are exactly the
    # contiguous prefix x0..x{n-1}; the version matches the mutation
    # count (register version 2, one bump per add).
    assert table.tuple_ids() == ["b1", "b2"] + [f"x{i}" for i in range(n_added)]
    assert table.version == 2 + n_added

    oracle = table_from_rows([("b1", 50.0, 0.5), ("b2", 40.0, 0.45)], name="killed")
    for i in range(n_added):
        oracle.add(f"x{i}", float(i % 97), 0.3)
    mine = exact_ptk_query(table, TopKQuery(k=2), 0.3)
    theirs = exact_ptk_query(oracle, TopKQuery(k=2), 0.3)
    assert mine.answers == theirs.answers


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
def test_serve_layer_journals_served_keys(tmp_path):
    import asyncio

    from repro import obs
    from repro.serve import ServeApp, ServeConfig

    db = DurableDB(tmp_path, fsync="off")
    db.register(sample_table(name="served"))
    app = ServeApp(db, ServeConfig(window_ms=0.0, enable_obs=False))
    body = json.dumps({"table": "served", "k": 2, "threshold": 0.3}).encode()

    async def main():
        status, _, payload = await app.dispatch("POST", "/query", body)
        return status, json.loads(payload)

    try:
        status, response = asyncio.run(main())
    finally:
        app.shutdown()
        obs.disable()
    assert status == 200
    assert response["answers"]
    db.close()
    recovered = DurableDB(tmp_path, fsync="off")
    assert ("served", 2, None) in recovered.last_recovery.serve_keys
    recovered.close()


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
class TestDurableCli:
    def seed(self, tmp_path) -> Path:
        data_dir = tmp_path / "state"
        db = DurableDB(data_dir, fsync="off")
        db.register(sample_table())
        db.add("demo", "cli1", 10.0, 0.3)
        db.close()
        return data_dir

    def test_recover_subcommand(self, tmp_path, capsys):
        data_dir = self.seed(tmp_path)
        assert main(["durable", "recover", str(data_dir)]) == 0
        out = capsys.readouterr().out
        assert "recovered 1 table(s)" in out
        assert "demo: 6 tuples" in out

    def test_verify_subcommand_clean(self, tmp_path, capsys):
        data_dir = self.seed(tmp_path)
        assert main(["durable", "verify", str(data_dir)]) == 0
        assert "0 torn byte(s)" in capsys.readouterr().out

    def test_verify_subcommand_reports_corruption(self, tmp_path, capsys):
        data_dir = self.seed(tmp_path)
        segment = WriteAheadLog.segment_paths(data_dir / "wal")[0]
        segment.write_bytes(b"NOTAWAL!" + segment.read_bytes()[8:])
        assert main(["durable", "verify", str(data_dir)]) == 1

    def test_snapshot_subcommand(self, tmp_path, capsys):
        data_dir = self.seed(tmp_path)
        assert main(["durable", "snapshot", str(data_dir)]) == 0
        assert "snapshotted 1 table(s)" in capsys.readouterr().out
        assert list((data_dir / "snapshots").glob("*.snap"))
        tables, report = recover_state(data_dir)
        assert report.snapshots_loaded == 1
        assert len(tables["demo"]) == 6

    def test_snapshot_subcommand_empty_dir_fails(self, tmp_path):
        assert main(["durable", "snapshot", str(tmp_path / "empty")]) == 1
