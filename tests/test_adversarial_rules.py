"""Adversarial rule structures: stress the compression/reordering paths.

Random tables exercise typical structure; these tests construct the
shapes most likely to break incremental bookkeeping — maximal spans,
interleaved rules, all-rule tables, certain rules, rule members adjacent
in rank, and rules whose members appear in reverse rank order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import ExactVariant, exact_topk_probabilities
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from tests.conftest import build_table


def assert_all_variants_match_naive(table, k):
    truth = naive_topk_probabilities(table, TopKQuery(k=k))
    for variant in ExactVariant:
        got = exact_topk_probabilities(table, TopKQuery(k=k), variant=variant)
        for tid, expected in truth.items():
            assert got[tid] == pytest.approx(expected, abs=1e-9), (
                variant,
                tid,
            )


class TestMaximalSpans:
    def test_one_rule_spanning_everything(self):
        n = 8
        table = build_table([0.12] * n, rule_groups=[list(range(n))])
        assert_all_variants_match_naive(table, k=3)

    def test_two_interleaved_full_span_rules(self):
        # members alternate: r0 gets even ranks, r1 odd ranks
        table = build_table(
            [0.15] * 10,
            rule_groups=[[0, 2, 4, 6, 8], [1, 3, 5, 7, 9]],
        )
        assert_all_variants_match_naive(table, k=4)

    def test_nested_spans(self):
        # r0 spans [0..9], r1 nested inside [3..6]
        table = build_table(
            [0.2, 0.5, 0.2, 0.3, 0.2, 0.3, 0.2, 0.5, 0.2, 0.2],
            rule_groups=[[0, 9], [3, 5]],
        )
        assert_all_variants_match_naive(table, k=3)


class TestAllRuleTables:
    def test_every_tuple_in_some_rule(self):
        table = build_table(
            [0.3, 0.3, 0.25, 0.25, 0.2, 0.2],
            rule_groups=[[0, 3], [1, 4], [2, 5]],
        )
        assert_all_variants_match_naive(table, k=2)

    def test_pairs_adjacent_in_rank(self):
        table = build_table(
            [0.4, 0.4, 0.35, 0.35, 0.3, 0.3],
            rule_groups=[[0, 1], [2, 3], [4, 5]],
        )
        assert_all_variants_match_naive(table, k=2)


class TestCertainRules:
    def test_certain_rule_middle_of_ranking(self):
        # Pr(R) = 1: the "no member" branch disappears
        table = build_table(
            [0.6, 0.5, 0.5, 0.4], rule_groups=[[1, 2]]
        )
        assert_all_variants_match_naive(table, k=2)

    def test_multiple_certain_rules(self):
        table = build_table(
            [0.5, 0.5, 0.5, 0.5, 0.9],
            rule_groups=[[0, 1], [2, 3]],
        )
        assert_all_variants_match_naive(table, k=2)

    def test_certain_singleton_probability_one_tuple_in_rule(self):
        table = build_table([1.0, 0.4, 0.5], rule_groups=[])
        assert_all_variants_match_naive(table, k=1)


class TestExtremeSizes:
    def test_rule_longer_than_k(self):
        table = build_table(
            [0.1] * 9 + [0.9],
            rule_groups=[list(range(9))],
        )
        assert_all_variants_match_naive(table, k=2)

    def test_k_equals_one(self):
        table = build_table(
            [0.4, 0.3, 0.25, 0.3], rule_groups=[[0, 2], [1, 3]]
        )
        assert_all_variants_match_naive(table, k=1)

    @given(st.integers(2, 6))
    @settings(max_examples=5, deadline=None)
    def test_uniform_single_rule_any_k(self, k):
        table = build_table([0.09] * 10, rule_groups=[[0, 4, 9]])
        assert_all_variants_match_naive(table, k=k)


class TestScorePathologies:
    def test_rule_members_with_reversed_insertion_order(self):
        # rank order differs from insertion order within the rule
        table = build_table(
            [0.3, 0.3, 0.3],
            rule_groups=[[2, 0]],  # rule lists lower-ranked member first
            scores=[30, 20, 10],
        )
        assert_all_variants_match_naive(table, k=1)

    def test_tied_scores_resolved_by_id(self):
        table = build_table(
            [0.4, 0.4, 0.4],
            rule_groups=[[0, 2]],
            scores=[10, 10, 10],
        )
        assert_all_variants_match_naive(table, k=2)
