"""Tests for table statistics and the scan-depth planner."""

import pytest

from repro.core.exact import exact_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.exceptions import QueryError
from repro.model.statistics import collect_statistics
from repro.model.table import UncertainTable
from repro.query.planner import (
    choose_method,
    depth_curve,
    estimate_scan_depth,
    estimate_scan_depth_exactish,
)
from repro.query.topk import TopKQuery
from tests.conftest import build_table


class TestStatistics:
    def test_basic_summary(self):
        table = build_table([0.2, 0.4, 0.6], rule_groups=[[0, 1]])
        stats = collect_statistics(table)
        assert stats.n_tuples == 3
        assert stats.n_rules == 1
        assert stats.mean_probability == pytest.approx(0.4)
        assert stats.expected_world_size == pytest.approx(1.2)
        assert stats.mean_rule_size == 2.0
        assert stats.max_rule_size == 2
        assert stats.mean_rule_probability == pytest.approx(0.6)
        assert stats.rule_tuple_fraction == pytest.approx(2 / 3)

    def test_histogram_counts_all_tuples(self):
        table = build_table([0.05, 0.15, 0.95], rule_groups=[])
        stats = collect_statistics(table)
        assert sum(stats.probability_histogram) == 3

    def test_empty_table(self):
        stats = collect_statistics(UncertainTable())
        assert stats.n_tuples == 0
        assert stats.mean_probability == 0.0


class TestDepthEstimates:
    def workload(self, mean=0.5, n=4000):
        return generate_synthetic_table(
            SyntheticConfig(
                n_tuples=n, n_rules=n // 10, independent_prob_mean=mean, seed=3
            )
        )

    def test_estimate_within_factor_two_of_measured(self):
        table = self.workload()
        k, p = 50, 0.3
        measured = exact_ptk_query(table, TopKQuery(k=k), p).stats.scan_depth
        estimate = estimate_scan_depth(table, k, p)
        assert measured / 2 <= estimate.depth <= measured * 2

    def test_exactish_at_least_as_close(self):
        table = self.workload(mean=0.3)
        k, p = 50, 0.3
        measured = exact_ptk_query(table, TopKQuery(k=k), p).stats.scan_depth
        coarse = estimate_scan_depth(table, k, p)
        refined = estimate_scan_depth_exactish(table, k, p)
        assert abs(refined.depth - measured) <= abs(coarse.depth - measured) * 1.5

    def test_depth_grows_with_k(self):
        table = self.workload()
        curve = depth_curve(table, ks=[10, 50, 200], threshold=0.3)
        depths = [e.depth for e in curve]
        assert depths == sorted(depths)

    def test_depth_shrinks_with_mean_probability(self):
        low = estimate_scan_depth(self.workload(mean=0.2), 50, 0.3)
        high = estimate_scan_depth(self.workload(mean=0.8), 50, 0.3)
        assert high.depth < low.depth

    def test_depth_capped_by_table_size(self):
        table = build_table([0.01] * 10, rule_groups=[])
        estimate = estimate_scan_depth(table, 5, 0.3)
        assert estimate.depth == 10
        assert estimate.fraction == 1.0

    def test_empty_table(self):
        estimate = estimate_scan_depth(UncertainTable(), 5, 0.3)
        assert estimate.depth == 0

    def test_validation(self):
        table = build_table([0.5], rule_groups=[])
        with pytest.raises(QueryError):
            estimate_scan_depth(table, 0, 0.3)
        with pytest.raises(QueryError):
            estimate_scan_depth(table, 5, 0.0)
        with pytest.raises(QueryError):
            estimate_scan_depth_exactish(table, 5, 1.5)


class TestSignedQuantileRegression:
    """The mass target must stay *signed* across the threshold range.

    The pre-fix planner clamped the threshold at ``0.49999``, so every
    ``p > 0.5`` collapsed to ``z ~ 0`` and a mass target of ``~k`` —
    exactly where the tail bound fires earliest (``M ~ k - z_p sqrt(k)``).
    """

    def workload(self, n=4000):
        return generate_synthetic_table(
            SyntheticConfig(
                n_tuples=n, n_rules=0, independent_prob_mean=0.5, seed=11
            )
        )

    def test_high_threshold_target_falls_below_k(self):
        k = 100
        table = self.workload()
        estimate = estimate_scan_depth(table, k, 0.95)
        # z_{0.95} ~ -1.645, so the target sits well below k; the pre-fix
        # clamp produced a target of ~k here.
        assert estimate.mass_target <= k - k**0.5

    def test_depth_strictly_decreases_with_threshold(self):
        table = self.workload()
        k = 100
        depths = [
            estimate_scan_depth(table, k, p).depth
            for p in (0.1, 0.5, 0.8, 0.95)
        ]
        # Pre-fix, every p >= 0.5 produced the same depth (z clamped to
        # ~0); the signed quantile restores strict monotonicity.
        assert depths == sorted(depths, reverse=True)
        assert len(set(depths)) == len(depths)

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.8, 0.95])
    def test_predicted_tracks_measured_depth(self, p):
        table = self.workload()
        k = 100
        measured = exact_ptk_query(table, TopKQuery(k=k), p).stats.scan_depth
        predicted = estimate_scan_depth(table, k, p).depth
        assert measured * 0.65 <= predicted <= measured * 1.5, (
            p, predicted, measured
        )


class TestMethodChoice:
    def test_small_k_prefers_exact(self):
        table = TestDepthEstimates().workload()
        assert choose_method(table, k=10, threshold=0.3) == "exact"

    def test_huge_k_prefers_sampling(self):
        table = TestDepthEstimates().workload(n=20000)
        assert choose_method(table, k=2000, threshold=0.3) == "sampling"

    def test_budget_shifts_crossover(self):
        table = TestDepthEstimates().workload()
        generous = choose_method(table, k=400, threshold=0.3, sample_budget=10**9)
        assert generous == "exact"  # sampling cost inflated by the budget


class TestLatencyModel:
    def workload(self, n=2000):
        return generate_synthetic_table(
            SyntheticConfig(n_tuples=n, n_rules=n // 10, seed=5)
        )

    def test_exact_prediction_grows_with_depth(self):
        from repro.query.planner import LatencyModel

        model = LatencyModel()
        assert model.predict_exact_seconds(100) < model.predict_exact_seconds(
            1000
        )
        # Quadratic in depth: 10x depth -> 100x cell cost.
        small = model.predict_exact_seconds(100) - model.floor_seconds
        large = model.predict_exact_seconds(1000) - model.floor_seconds
        assert large == pytest.approx(100 * small, rel=1e-6)

    def test_observe_exact_calibrates_toward_measurement(self):
        from repro.query.planner import LatencyModel

        model = LatencyModel(seconds_per_cell=1e-9)
        before = model.predict_exact_seconds(1000)
        for _ in range(50):
            model.observe_exact(1000, 0.5)  # much slower than predicted
        after = model.predict_exact_seconds(1000)
        assert after > before
        assert after == pytest.approx(0.5, rel=0.5)

    def test_estimate_latency_fields(self):
        from repro.query.planner import LatencyModel, estimate_latency

        table = self.workload()
        estimate = estimate_latency(
            table, k=50, threshold=0.3, model=LatencyModel()
        )
        assert estimate.depth >= 50
        assert estimate.exact_seconds > 0
        assert estimate.sampled_seconds_per_unit > 0
        assert 0 < estimate.expected_unit_length <= len(table)

    def test_unit_budget_for_inverts_prediction(self):
        from repro.query.planner import LatencyModel

        model = LatencyModel()
        units = model.unit_budget_for(1.0, unit_length=100)
        predicted = model.predict_sampled_seconds(units, unit_length=100)
        assert predicted == pytest.approx(1.0, rel=0.05)

    def test_explain_plan_reports_latency_with_model(self):
        from repro.query.engine import UncertainDB
        from repro.query.planner import LatencyModel

        db = UncertainDB()
        db.register(self.workload(), name="w")
        bare = db.explain_plan("w", k=50, threshold=0.3)
        assert "predicted_exact_seconds" not in bare
        rich = db.explain_plan(
            "w", k=50, threshold=0.3, latency_model=LatencyModel()
        )
        assert rich["predicted_exact_seconds"] > 0
        assert rich["predicted_seconds_per_sample_unit"] > 0
        assert rich["expected_sample_unit_length"] > 0
