"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.charts import chart_for_runtime_sweep, render_chart
from repro.bench.harness import ExperimentTable


def sweep_table():
    table = ExperimentTable(
        title="t",
        columns=["k", "runtime_rc", "runtime_rc_lr", "runtime_sampling"],
    )
    table.add_row(50, 0.1, 0.03, 0.5)
    table.add_row(200, 0.7, 0.2, 0.5)
    table.add_row(800, 18.0, 3.4, 2.7)
    return table


class TestRenderChart:
    def test_contains_legend_and_axis(self):
        text = render_chart(sweep_table(), x="k", series=["runtime_rc"])
        assert "o=runtime_rc" in text
        assert "k: 50  200  800" in text

    def test_multiple_series_markers(self):
        text = render_chart(
            sweep_table(), x="k", series=["runtime_rc", "runtime_rc_lr"]
        )
        assert "o" in text and "x" in text
        assert "x=runtime_rc_lr" in text

    def test_log_scale_annotated(self):
        text = render_chart(
            sweep_table(), x="k", series=["runtime_rc"], log_y=True
        )
        assert "(log y)" in text

    def test_extremes_on_axis(self):
        text = render_chart(sweep_table(), x="k", series=["runtime_rc"])
        assert "18" in text  # max label
        assert "0.1" in text  # min label

    def test_single_point(self):
        table = ExperimentTable(title="t", columns=["x", "y"])
        table.add_row(1, 5.0)
        text = render_chart(table, x="x", series=["y"])
        assert "o" in text

    def test_empty_table(self):
        table = ExperimentTable(title="t", columns=["x", "y"])
        assert "no data" in render_chart(table, x="x", series=["y"])

    def test_requires_series(self):
        with pytest.raises(ValueError):
            render_chart(sweep_table(), x="k", series=[])

    def test_too_many_series(self):
        with pytest.raises(ValueError):
            render_chart(sweep_table(), x="k", series=["runtime_rc"] * 9)

    def test_constant_series(self):
        table = ExperimentTable(title="t", columns=["x", "y"])
        table.add_row(1, 2.0)
        table.add_row(2, 2.0)
        text = render_chart(table, x="x", series=["y"])
        grid_area = "\n".join(
            line.split("|", 1)[1]
            for line in text.splitlines()
            if "|" in line
        )
        assert grid_area.count("o") == 2

    def test_markers_monotone_for_monotone_series(self):
        # a rising series must render with non-increasing row indices
        table = ExperimentTable(title="t", columns=["x", "y"])
        for i, v in enumerate([1.0, 2.0, 4.0, 8.0]):
            table.add_row(i, v)
        text = render_chart(table, x="x", series=["y"], height=8)
        rows_with_marker = [
            r for r, line in enumerate(text.splitlines()) if "o" in line
        ]
        # later x positions appear in earlier (higher) rows
        positions = {}
        for r, line in enumerate(text.splitlines()):
            body = line.split("|", 1)
            if len(body) == 2:
                for c, ch in enumerate(body[1]):
                    if ch == "o":
                        positions[c] = r
        columns = sorted(positions)
        rows = [positions[c] for c in columns]
        assert rows == sorted(rows, reverse=True)


class TestRuntimeConvenience:
    def test_selects_available_runtime_columns(self):
        text = chart_for_runtime_sweep(sweep_table(), x="k")
        assert "runtime_sampling" in text
        assert "(log y)" in text
