"""Extra coverage for semantics modules: statespace merging, extras."""

import pytest

from repro.query.topk import TopKQuery
from repro.semantics.extras import expected_ranks, global_topk
from repro.semantics.statespace import utopk_by_state_scan
from repro.semantics.utopk import utopk_query
from tests.conftest import build_table


class TestStateScanDetails:
    def test_end_of_list_partial_vector(self):
        # the most probable outcome is a world with fewer than k tuples
        table = build_table([0.05, 0.05], rule_groups=[])
        result = utopk_by_state_scan(table, TopKQuery(k=2))
        best_first = utopk_query(table, TopKQuery(k=2))
        assert result.answer.probability == pytest.approx(
            best_first.probability
        )
        # empty world has probability 0.95^2 ~ 0.9, the clear winner
        assert result.answer.vector == ()

    def test_scan_depth_bounded_by_table(self):
        table = build_table([0.6] * 6, rule_groups=[])
        result = utopk_by_state_scan(table, TopKQuery(k=3))
        assert result.scan_depth <= 6

    def test_rules_with_certain_total(self):
        table = build_table([0.5, 0.5, 0.7], rule_groups=[[0, 1]])
        result = utopk_by_state_scan(table, TopKQuery(k=2))
        best_first = utopk_query(table, TopKQuery(k=2))
        assert result.answer.probability == pytest.approx(
            best_first.probability
        )


class TestExtrasEdges:
    def test_global_topk_empty_table(self):
        from repro.model.table import UncertainTable

        assert global_topk(UncertainTable(), TopKQuery(k=3)) == []

    def test_expected_ranks_empty_table(self):
        from repro.model.table import UncertainTable

        assert expected_ranks(UncertainTable(), TopKQuery(k=1)) == {}

    def test_expected_rank_of_last_tuple(self):
        table = build_table([0.5, 0.5, 0.5], rule_groups=[])
        ranks = expected_ranks(table, TopKQuery(k=1))
        assert ranks["t2"] == pytest.approx(2.0)  # 1 + 0.5 + 0.5
