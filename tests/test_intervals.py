"""Tests for confidence intervals and threshold verdicts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_topk_probabilities
from repro.core.sampling import SamplingConfig, sampled_topk_probabilities
from repro.datagen.sensors import panda_table
from repro.exceptions import SamplingError
from repro.query.topk import TopKQuery
from repro.stats.intervals import (
    classify_against_threshold,
    normal_quantile,
    wilson_interval,
)


class TestNormalQuantile:
    def test_standard_levels(self):
        assert normal_quantile(0.95) == pytest.approx(1.95996, abs=1e-4)
        assert normal_quantile(0.99) == pytest.approx(2.57583, abs=1e-4)

    def test_interpolated_level(self):
        # z for 0.9545 should be very close to 2
        assert normal_quantile(0.9545) == pytest.approx(2.0, abs=0.01)

    def test_symmetric_tails(self):
        # quantile grows with confidence
        zs = [normal_quantile(c) for c in (0.5, 0.8, 0.9, 0.99)]
        assert zs == sorted(zs)

    def test_validation(self):
        with pytest.raises(SamplingError):
            normal_quantile(0.0)
        with pytest.raises(SamplingError):
            normal_quantile(1.0)


class TestWilsonInterval:
    def test_contains_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_bounds_in_unit_interval(self):
        assert wilson_interval(0, 10)[0] == pytest.approx(0.0, abs=1e-12)
        assert wilson_interval(10, 10)[1] == pytest.approx(1.0, abs=1e-12)

    def test_shrinks_with_samples(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(30, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_widens_with_confidence(self):
        loose = wilson_interval(30, 100, confidence=0.8)
        tight = wilson_interval(30, 100, confidence=0.99)
        assert (tight[1] - tight[0]) > (loose[1] - loose[0])

    def test_validation(self):
        with pytest.raises(SamplingError):
            wilson_interval(1, 0)
        with pytest.raises(SamplingError):
            wilson_interval(-1, 10)
        with pytest.raises(SamplingError):
            wilson_interval(11, 10)

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_always_a_valid_interval(self, successes, samples):
        if successes > samples:
            successes = samples
        low, high = wilson_interval(successes, samples)
        assert 0.0 <= low <= high <= 1.0

    def test_empirical_coverage(self):
        # ~95% of intervals from repeated sampling must contain p
        rng = np.random.default_rng(0)
        p, n, trials = 0.3, 200, 400
        covered = 0
        for _ in range(trials):
            successes = rng.binomial(n, p)
            low, high = wilson_interval(successes, n)
            if low <= p <= high:
                covered += 1
        assert covered / trials > 0.92


class TestClassification:
    def test_three_way_split(self):
        estimates = {"in": 0.9, "out": 0.05, "edge": 0.52}
        verdicts = classify_against_threshold(estimates, 200, 0.5)
        assert verdicts.sure_in == ("in",)
        assert verdicts.sure_out == ("out",)
        assert verdicts.undecided == ("edge",)

    def test_population_adds_unsampled_as_out(self):
        verdicts = classify_against_threshold(
            {"a": 0.9}, 500, 0.5, population=("a", "never_seen")
        )
        assert "never_seen" in verdicts.sure_out

    def test_more_samples_resolve_edges(self):
        estimates = {"edge": 0.56}
        few = classify_against_threshold(estimates, 50, 0.5)
        many = classify_against_threshold(estimates, 5000, 0.5)
        assert "edge" in few.undecided
        assert "edge" in many.sure_in

    def test_threshold_validation(self):
        with pytest.raises(SamplingError):
            classify_against_threshold({}, 10, 0.0)


class TestSamplingIntegration:
    def test_intervals_cover_truth_on_panda(self):
        table = panda_table()
        query = TopKQuery(k=2)
        truth = exact_topk_probabilities(table, query)
        result = sampled_topk_probabilities(
            table,
            query,
            SamplingConfig(sample_size=2000, progressive=False, seed=5),
        )
        misses = 0
        for tid, probability in truth.items():
            low, high = result.interval_of(tid, confidence=0.99)
            if not (low <= probability <= high):
                misses += 1
        assert misses == 0

    def test_classify_on_panda(self):
        table = panda_table()
        result = sampled_topk_probabilities(
            table,
            TopKQuery(k=2),
            SamplingConfig(sample_size=20_000, progressive=False, seed=5),
        )
        verdicts = result.classify(0.35, confidence=0.95)
        assert set(verdicts.sure_in) == {"R2", "R3", "R5"}
        assert "R6" in verdicts.sure_out
