"""Tests for the benchmark harness (tiny workloads, shape checks only)."""

import pytest

from repro.bench.ablation import (
    ABLATION_STEPS,
    example5_costs,
    pruning_ablation,
    reordering_cost_experiment,
)
from repro.bench.comparison import (
    iceberg_comparison,
    panda_probabilities_table,
    panda_worlds_table,
    ukranks_table,
)
from repro.bench.harness import ExperimentTable, measure, run_sweep
from repro.bench.quality import convergence_experiment, quality_experiment
from repro.bench.reporting import render_table
from repro.bench.scalability import scalability_vs_rules, scalability_vs_tuples
from repro.bench.sweeps import (
    SweepSettings,
    figure4_view,
    figure5_view,
    sweep_axis,
)
from repro.datagen.iceberg import IcebergConfig
from repro.datagen.synthetic import SyntheticConfig

TINY = SweepSettings(n_tuples=400, n_rules=40, k=10, scale=1.0, seed=3)


class TestHarness:
    def test_measure(self):
        result, seconds = measure(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_experiment_table_row_validation(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]
        assert table.as_dicts()[1] == {"a": 3, "b": 4}

    def test_run_sweep(self):
        table = run_sweep(
            "demo", "x", [1, 2, 3], ["square"], lambda x: {"square": x * x}
        )
        assert table.column("square") == [1, 4, 9]

    def test_render_table(self):
        table = ExperimentTable(title="demo", columns=["x", "y"], notes="n")
        table.add_row(1, 0.5)
        text = render_table(table)
        assert "demo" in text
        assert "x" in text and "y" in text

    def test_render_empty_table(self):
        table = ExperimentTable(title="empty", columns=["x"])
        assert "empty" in render_table(table)


class TestSweeps:
    def test_sweep_axis_produces_all_metrics(self):
        sweep = sweep_axis("k", values=[5, 10], settings=TINY)
        assert len(sweep.rows) == 2
        assert "scan_depth" in sweep.columns
        assert all(v > 0 for v in sweep.column("runtime_rc_lr"))

    def test_figure_views(self):
        sweep = sweep_axis("threshold", values=[0.3, 0.7], settings=TINY)
        fig4 = figure4_view(sweep)
        fig5 = figure5_view(sweep)
        assert fig4.columns[0] == "threshold"
        assert "sample_length" in fig4.columns
        assert "runtime_sampling" in fig5.columns

    def test_membership_axis_shapes_answer_size(self):
        sweep = sweep_axis("membership", values=[0.5, 0.9], settings=TINY)
        sizes = sweep.column("answer_size")
        # answers shrink when everything is near-certain (paper Fig 4a)
        assert sizes[1] <= sizes[0]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            sweep_axis("bogus", values=[1], settings=TINY)


class TestQuality:
    def test_quality_experiment_columns(self):
        table = quality_experiment(
            k=5,
            threshold=0.3,
            sample_sizes=[100, 400],
            config=SyntheticConfig(n_tuples=300, n_rules=30, seed=2),
        )
        assert table.column("sample_size") == [100, 400]
        errors = table.column("error_rate")
        bounds = table.column("ch_bound")
        assert all(e >= 0 for e in errors)
        # measured error should beat the worst-case bound (paper Fig 6)
        assert errors[-1] <= bounds[-1]

    def test_convergence_experiment(self):
        table = convergence_experiment(
            k=5, config=SyntheticConfig(n_tuples=300, n_rules=30, seed=2)
        )
        drawn = table.column("units_drawn")
        assert all(d > 0 for d in drawn)


class TestScalability:
    def test_vs_tuples(self):
        table = scalability_vs_tuples(
            tuple_counts=[400, 800], k=10, scale=1.0, seed=3
        )
        assert len(table.rows) == 2
        assert all(v > 0 for v in table.column("scan_depth"))

    def test_vs_rules(self):
        table = scalability_vs_rules(
            rule_counts=[20, 40], n_tuples=400, k=10, scale=1.0, seed=3
        )
        assert len(table.rows) == 2

    def test_scale_parameter(self):
        table = scalability_vs_tuples(tuple_counts=[1000], k=100, scale=0.1)
        assert "k=10" in table.notes


class TestAblation:
    def test_example5_costs_match_paper(self):
        assert example5_costs() == {"aggressive": 15, "lazy": 12}

    def test_reordering_cost_experiment_lazy_wins(self):
        table = reordering_cost_experiment(
            rule_size_means=[3, 6], n_tuples=300, n_rules=30, k=10
        )
        for row in table.as_dicts():
            assert row["cost_lazy"] <= row["cost_aggressive"]

    def test_pruning_ablation_rows(self):
        table = pruning_ablation(
            config=SyntheticConfig(n_tuples=400, n_rules=40, seed=5), k=10
        )
        assert len(table.rows) == len(ABLATION_STEPS)
        by_label = {row["rules_enabled"]: row for row in table.as_dicts()}
        # all answer sets must agree regardless of pruning configuration
        sizes = {row["answer_size"] for row in table.as_dicts()}
        assert len(sizes) == 1
        # full pruning must not scan more than no pruning
        assert (
            by_label["all (+tail)"]["scan_depth"]
            <= by_label["none"]["scan_depth"]
        )


class TestComparison:
    def test_panda_worlds_table_has_twelve_rows(self):
        table = panda_worlds_table()
        assert len(table.rows) == 12
        total = sum(row[1] for row in table.rows)
        assert total == pytest.approx(1.0)

    def test_panda_probabilities_table(self):
        table = panda_probabilities_table()
        values = dict(table.rows)
        assert values["R5"] == pytest.approx(0.704)

    def test_iceberg_comparison_small(self):
        study = iceberg_comparison(
            k=5,
            threshold=0.5,
            config=IcebergConfig(n_tuples=300, n_rules=60, seed=9),
        )
        assert len(study.comparison.utopk.vector) <= 5
        assert len(study.comparison.ukranks.winners) == 5
        ranks = ukranks_table(study)
        assert len(ranks.rows) == 5
        # every mentioned tuple has a row in the summary
        assert len(study.answer_table.rows) == len(
            study.comparison.mentioned_tuples()
        )
