"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.datagen.iceberg import (
    CLASS_WEIGHTS,
    CONFIDENCE_CLASSES,
    IcebergConfig,
    generate_iceberg_table,
)
from repro.datagen.sensors import (
    example2_table,
    example3_table,
    example5_table,
    panda_table,
)
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.exceptions import ValidationError
from repro.model.worlds import count_possible_worlds


class TestSensors:
    def test_panda_matches_table1(self):
        table = panda_table()
        assert len(table) == 6
        assert table.probability("R4") == 1.0
        assert table.get("R1").score == 25
        rules = {r.rule_id: set(r.tuple_ids) for r in table.multi_rules()}
        assert rules == {"rule_B": {"R2", "R3"}, "rule_E": {"R5", "R6"}}

    def test_example2_all_independent(self):
        table = example2_table()
        assert len(table) == 9
        assert table.multi_rules() == []
        assert [t.tid for t in table.ranked_tuples()] == [
            f"t{i}" for i in range(1, 10)
        ]

    def test_example3_rules(self):
        table = example3_table()
        rules = {r.rule_id: set(r.tuple_ids) for r in table.multi_rules()}
        assert rules == {"R1": {"t2", "t4", "t9"}, "R2": {"t5", "t7"}}

    def test_example5_structure(self):
        table = example5_table()
        assert len(table) == 11
        assert count_possible_worlds(table) > 0


class TestSynthetic:
    def test_default_inventory(self):
        table = generate_synthetic_table(SyntheticConfig(seed=1))
        assert len(table) == 20_000
        assert len(table.multi_rules()) == 2_000
        table.validate()

    def test_small_config(self):
        config = SyntheticConfig(n_tuples=500, n_rules=50, seed=2)
        table = generate_synthetic_table(config)
        assert len(table) == 500
        assert len(table.multi_rules()) == 50

    def test_deterministic_under_seed(self):
        a = generate_synthetic_table(SyntheticConfig(n_tuples=300, n_rules=30, seed=5))
        b = generate_synthetic_table(SyntheticConfig(n_tuples=300, n_rules=30, seed=5))
        assert [(t.tid, t.score, t.probability) for t in a] == [
            (t.tid, t.score, t.probability) for t in b
        ]

    def test_different_seeds_differ(self):
        a = generate_synthetic_table(SyntheticConfig(n_tuples=300, n_rules=30, seed=5))
        b = generate_synthetic_table(SyntheticConfig(n_tuples=300, n_rules=30, seed=6))
        assert [t.probability for t in a] != [t.probability for t in b]

    def test_membership_mean_tracks_config(self):
        config = SyntheticConfig(
            n_tuples=5000, n_rules=0, independent_prob_mean=0.3, seed=3
        )
        table = generate_synthetic_table(config)
        mean = np.mean([t.probability for t in table])
        assert mean == pytest.approx(0.3, abs=0.03)

    def test_rule_sizes_track_config(self):
        config = SyntheticConfig(
            n_tuples=5000, n_rules=300, rule_size_mean=4.0, seed=3
        )
        table = generate_synthetic_table(config)
        sizes = [r.length for r in table.multi_rules()]
        assert min(sizes) >= 2
        assert np.mean(sizes) == pytest.approx(4.0, abs=0.5)

    def test_rule_probabilities_legal(self):
        table = generate_synthetic_table(
            SyntheticConfig(n_tuples=2000, n_rules=200, seed=4)
        )
        for rule in table.multi_rules():
            assert table.rule_probability(rule) <= 1.0 + 1e-9

    def test_infeasible_config_rejected(self):
        with pytest.raises(ValidationError):
            generate_synthetic_table(SyntheticConfig(n_tuples=10, n_rules=50))
        with pytest.raises(ValidationError):
            generate_synthetic_table(SyntheticConfig(n_tuples=0))

    def test_scores_are_distinct(self):
        table = generate_synthetic_table(
            SyntheticConfig(n_tuples=1000, n_rules=50, seed=9)
        )
        scores = [t.score for t in table]
        assert len(set(scores)) == len(scores)


class TestIceberg:
    def test_default_inventory_matches_paper(self):
        table = generate_iceberg_table()
        assert len(table) == 4231
        assert len(table.multi_rules()) == 825
        table.validate()

    def test_rule_sizes_in_paper_range(self):
        table = generate_iceberg_table()
        sizes = [r.length for r in table.multi_rules()]
        assert min(sizes) >= 2
        assert max(sizes) <= 10

    def test_ids_follow_drift_order(self):
        # R1 has the largest drift value, R2 the second, ...
        table = generate_iceberg_table(IcebergConfig(n_tuples=200, n_rules=30))
        ranked = table.ranked_tuples()
        assert [t.tid for t in ranked] == [f"R{i+1}" for i in range(200)]

    def test_rule_probability_is_max_confidence(self):
        table = generate_iceberg_table(IcebergConfig(n_tuples=300, n_rules=60))
        for rule in table.multi_rules():
            confidences = [
                table.get(tid).attributes["confidence"] for tid in rule.tuple_ids
            ]
            assert table.rule_probability(rule) == pytest.approx(
                max(confidences), abs=1e-9
            )

    def test_member_probability_renormalisation(self):
        # Pr(t) = conf(t)/sum(conf) * Pr(R), the paper's preprocessing
        table = generate_iceberg_table(IcebergConfig(n_tuples=300, n_rules=60))
        for rule in table.multi_rules():
            confidences = {
                tid: table.get(tid).attributes["confidence"]
                for tid in rule.tuple_ids
            }
            total = sum(confidences.values())
            rule_probability = max(confidences.values())
            for tid in rule.tuple_ids:
                expected = confidences[tid] / total * rule_probability
                assert table.probability(tid) == pytest.approx(expected, abs=1e-9)

    def test_confidence_values_from_classes(self):
        table = generate_iceberg_table(IcebergConfig(n_tuples=200, n_rules=20))
        legal = {value for _, value in CONFIDENCE_CLASSES}
        for tup in table:
            assert tup.attributes["confidence"] in legal

    def test_class_weights_sum_to_one(self):
        assert sum(CLASS_WEIGHTS) == pytest.approx(1.0)

    def test_deterministic_under_seed(self):
        a = generate_iceberg_table(IcebergConfig(n_tuples=200, n_rules=30, seed=1))
        b = generate_iceberg_table(IcebergConfig(n_tuples=200, n_rules=30, seed=1))
        assert [(t.tid, t.probability) for t in a] == [
            (t.tid, t.probability) for t in b
        ]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            generate_iceberg_table(IcebergConfig(n_tuples=10, n_rules=50))
        with pytest.raises(ValidationError):
            generate_iceberg_table(IcebergConfig(min_rule_size=1))
