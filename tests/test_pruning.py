"""Tests for the pruning rules (Theorems 3-5) and the tail stop bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.pruning import PruningFlags, PruningTracker
from repro.core.rule_compression import DominantSetScan, rule_index_of_table
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_topk_probabilities
from tests.conftest import build_table, uncertain_tables


class TestPruningFlags:
    def test_default_all_on(self):
        flags = PruningFlags()
        assert flags.membership and flags.same_rule
        assert flags.total_probability and flags.tail_bound

    def test_none(self):
        flags = PruningFlags.none()
        assert not (
            flags.membership
            or flags.same_rule
            or flags.total_probability
            or flags.tail_bound
        )


class TestMembershipPruning:
    """Theorem 3: failed independent tuples transfer failure downward."""

    def test_lower_probability_independent_pruned(self):
        table = build_table([0.9, 0.5, 0.4], rule_groups=[])
        tracker = PruningTracker(
            k=1, threshold=0.9, rule_of={}, table_rule_probability={}
        )
        tuples = table.ranked_tuples()
        tracker.note_first_encounter(tuples[1])
        assert tracker.should_skip(tuples[1]) is None
        tracker.observe(tuples[1], 0.05)  # t1 fails
        tracker.note_first_encounter(tuples[2])
        assert tracker.should_skip(tuples[2]) == "membership"

    def test_higher_probability_not_pruned(self):
        table = build_table([0.9, 0.3, 0.8], rule_groups=[])
        tracker = PruningTracker(
            k=1, threshold=0.9, rule_of={}, table_rule_probability={}
        )
        tuples = table.ranked_tuples()
        tracker.observe(tuples[1], 0.05)  # Pr=0.3 fails
        assert tracker.should_skip(tuples[2]) is None  # Pr=0.8 > 0.3

    def test_passing_tuple_does_not_poison_tracker(self):
        table = build_table([0.9, 0.8], rule_groups=[])
        tracker = PruningTracker(
            k=2, threshold=0.5, rule_of={}, table_rule_probability={}
        )
        tuples = table.ranked_tuples()
        tracker.observe(tuples[0], 0.9)  # passes
        assert tracker.should_skip(tuples[1]) is None

    def test_rule_pruned_by_independent_failure(self):
        # rule ranked entirely below a failed independent tuple, Pr(R) smaller
        table = build_table([0.9, 0.6, 0.3, 0.2], rule_groups=[[2, 3]])
        rule_of = rule_index_of_table(table)
        tracker = PruningTracker(
            k=1,
            threshold=0.9,
            rule_of=rule_of,
            table_rule_probability={"r0": 0.5},
        )
        tuples = table.ranked_tuples()
        tracker.note_first_encounter(tuples[1])
        tracker.observe(tuples[1], 0.01)  # independent Pr=0.6 fails
        tracker.note_first_encounter(tuples[2])  # first rule member
        assert tracker.should_skip(tuples[2]) == "membership"
        tracker.note_first_encounter(tuples[3])
        assert tracker.should_skip(tuples[3]) == "membership"

    def test_rule_entry_snapshot_excludes_later_failures(self):
        # an independent failure recorded *after* the rule's first member
        # was seen must not prune rule members (rank condition violated)
        table = build_table([0.9, 0.3, 0.6, 0.25], rule_groups=[[1, 3]])
        rule_of = rule_index_of_table(table)
        tracker = PruningTracker(
            k=1,
            threshold=0.9,
            rule_of=rule_of,
            table_rule_probability={"r0": 0.55},
        )
        tuples = table.ranked_tuples()
        tracker.note_first_encounter(tuples[1])  # rule enters; entry max = -1
        tracker.observe(tuples[1], 0.02)
        tracker.note_first_encounter(tuples[2])
        tracker.observe(tuples[2], 0.02)  # independent 0.6 fails, too late
        tracker.note_first_encounter(tuples[3])
        assert tracker.should_skip(tuples[3]) != "membership"


class TestSameRulePruning:
    """Theorem 4: failure transfers within one rule."""

    def test_smaller_member_pruned(self):
        table = build_table([0.9, 0.4, 0.5, 0.2], rule_groups=[[1, 3]])
        rule_of = rule_index_of_table(table)
        tracker = PruningTracker(
            k=1,
            threshold=0.9,
            rule_of=rule_of,
            table_rule_probability={"r0": 0.6},
        )
        tuples = table.ranked_tuples()
        tracker.note_first_encounter(tuples[1])
        tracker.observe(tuples[1], 0.01)  # member Pr=0.4 fails
        tracker.note_first_encounter(tuples[3])
        assert tracker.should_skip(tuples[3]) == "same-rule"

    def test_larger_member_not_pruned(self):
        table = build_table([0.9, 0.2, 0.5, 0.4], rule_groups=[[1, 3]])
        rule_of = rule_index_of_table(table)
        tracker = PruningTracker(
            k=1,
            threshold=0.9,
            rule_of=rule_of,
            table_rule_probability={"r0": 0.6},
        )
        tuples = table.ranked_tuples()
        tracker.observe(tuples[1], 0.01)  # member Pr=0.2 fails
        assert tracker.should_skip(tuples[3]) is None  # Pr=0.4 > 0.2


class TestStopping:
    def test_total_probability_stop(self):
        tracker = PruningTracker(
            k=1, threshold=0.5, rule_of={}, table_rule_probability={}
        )
        table = build_table([0.9], rule_groups=[])
        scan = DominantSetScan(table.ranked_tuples(), {})
        tracker.observe(table.ranked_tuples()[0], 0.9)  # mass 0.9 > 1 - 0.5
        assert tracker.should_stop(scan) == "total-probability"

    def test_tail_bound_stop(self):
        # 30 near-certain tuples, k=1: Pr(at most 1 appears) ~ 0
        probabilities = [0.99] * 30
        table = build_table(probabilities, rule_groups=[])
        ranked = table.ranked_tuples()
        tracker = PruningTracker(
            k=1,
            threshold=0.5,
            rule_of={},
            table_rule_probability={},
            stop_check_interval=1,
            flags=PruningFlags(True, True, False, True),
        )
        scan = DominantSetScan(ranked, {})
        stopped = None
        for tup in ranked:
            scan.advance(tup)
            stopped = tracker.should_stop(scan)
            if stopped:
                break
        assert stopped == "tail-bound"
        assert scan.scanned < len(ranked)

    def test_no_stop_when_fewer_units_than_k(self):
        table = build_table([0.5, 0.5], rule_groups=[])
        ranked = table.ranked_tuples()
        tracker = PruningTracker(
            k=5,
            threshold=0.5,
            rule_of={},
            table_rule_probability={},
            stop_check_interval=1,
        )
        scan = DominantSetScan(ranked, {})
        for tup in ranked:
            scan.advance(tup)
            assert tracker.should_stop(scan) is None


class TestTheorem5Accumulation:
    """The Theorem-5 mass must accumulate compensated, not naively."""

    def test_mass_survives_tiny_terms(self):
        # A naive += accumulator loses every term below the current
        # sum's ulp, so a mass creeping over the k - p stop boundary by
        # many tiny contributions would never trigger the stop.
        table = build_table([0.9, 0.8], rule_groups=[])
        tup = table.ranked_tuples()[0]
        tracker = PruningTracker(
            k=1, threshold=0.5, rule_of={}, table_rule_probability={}
        )
        tracker.observe(tup, 0.5)
        naive = 0.5
        for _ in range(1000):
            tracker.observe(tup, 1e-17)
            naive += 1e-17
        assert naive == 0.5  # the accumulator behaviour being replaced
        assert tracker.probability_mass > 0.5  # true mass crossed k - p

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=200)
    )
    @settings(max_examples=100, deadline=None)
    def test_mass_matches_exact_sum(self, values):
        import math

        table = build_table([0.9], rule_groups=[])
        tup = table.ranked_tuples()[0]
        tracker = PruningTracker(
            k=2, threshold=0.3, rule_of={}, table_rule_probability={}
        )
        for value in values:
            tracker.observe(tup, value)
        assert tracker.probability_mass == pytest.approx(
            math.fsum(values), abs=1e-13
        )

    @given(
        uncertain_tables(max_tuples=9),
        st.integers(1, 4),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_stop_decisions_preserve_the_answer(self, table, k, threshold):
        # Theorem 5 alone, against the unpruned scan and the exact
        # rational oracle, at arbitrary thresholds: stopping early must
        # never change membership.
        query = TopKQuery(k=k)
        stopped = exact_ptk_query(
            table,
            query,
            threshold,
            pruning_flags=PruningFlags(False, False, True, False),
            stop_check_interval=1,
        )
        unpruned = exact_ptk_query(table, query, threshold, pruning=False)
        assert stopped.answer_set == unpruned.answer_set
        truth = naive_topk_probabilities(table, query, exact=True)
        expected = {tid for tid, pr in truth.items() if pr >= threshold}
        assert stopped.answer_set == expected


class TestEndToEndSoundness:
    """Pruning must never change the answer set."""

    @given(uncertain_tables(max_tuples=10), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_pruned_answers_equal_unpruned(self, table, k):
        query = TopKQuery(k=k)
        threshold = 0.31  # avoid borderline float-equality flakes
        pruned = exact_ptk_query(table, query, threshold, pruning=True)
        unpruned = exact_ptk_query(table, query, threshold, pruning=False)
        assert pruned.answer_set == unpruned.answer_set

    @given(uncertain_tables(max_tuples=10), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_each_flag_combination_is_sound(self, table, k):
        query = TopKQuery(k=k)
        threshold = 0.4
        # Ground truth in exact rational arithmetic: Fraction >= float is
        # an exact comparison, so tuples whose true Pr^k lands precisely
        # on the threshold are classified unambiguously.  The engine's
        # compensated summation must agree even on those.
        naive = naive_topk_probabilities(table, query, exact=True)
        truth = {tid for tid, pr in naive.items() if pr >= threshold}
        for flags in (
            PruningFlags(True, False, False, False),
            PruningFlags(False, True, False, False),
            PruningFlags(False, False, True, False),
            PruningFlags(False, False, False, True),
            PruningFlags(),
        ):
            answer = exact_ptk_query(
                table, query, threshold, pruning_flags=flags
            )
            assert answer.answer_set == truth

    def test_pruning_reduces_scan_depth_on_large_input(self):
        probabilities = [0.9] * 200
        table = build_table(probabilities, rule_groups=[])
        query = TopKQuery(k=5)
        pruned = exact_ptk_query(table, query, 0.3, pruning=True)
        unpruned = exact_ptk_query(table, query, 0.3, pruning=False)
        assert pruned.stats.scan_depth < unpruned.stats.scan_depth
        assert unpruned.stats.scan_depth == 200
