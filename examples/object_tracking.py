"""Mobile-object tracking: streaming PT-k over radar detections.

The paper's second motivating domain (Section 1: "mobile object
tracking").  Radar stations detect moving objects; detections carry
confidence values and co-detections of one object exclude each other.
An analyst continuously asks: *which detections are, with probability at
least p, among the k fastest in the last W readings?*

Demonstrates the streaming subsystem: a sliding window, the answer
cache, and delta monitoring (alerts when the credible-top-k set
changes).

Run::

    python examples/object_tracking.py
"""

from repro.datagen.tracking import TrackingConfig, detection_stream, tracking_table
from repro.core.exact import exact_ptk_query
from repro.query.topk import TopKQuery
from repro.stream import PTKMonitor, SlidingWindowPTK

K = 5
THRESHOLD = 0.45
WINDOW = 400


def main() -> None:
    config = TrackingConfig(n_objects=40, n_ticks=120, seed=8)

    window = SlidingWindowPTK(k=K, threshold=THRESHOLD, window_size=WINDOW)
    monitor = PTKMonitor(window)

    print(
        f"Streaming radar detections; window={WINDOW}, k={K}, p={THRESHOLD}"
    )
    interesting = 0
    for detection, tag in detection_stream(config):
        delta = monitor.observe(detection, rule_tag=tag)
        if delta.changed and interesting < 12:
            interesting += 1
            parts = []
            if delta.entered:
                parts.append("entered: " + ", ".join(sorted(delta.entered)))
            if delta.left:
                parts.append("left: " + ", ".join(sorted(delta.left)))
            print(
                f"  arrival {delta.arrival:>6} (window v{window.version}): "
                + "; ".join(parts)
            )

    print(
        f"\nProcessed {window.arrivals} detections; answer-set churn: "
        f"{monitor.churn()} membership changes"
    )

    answer = window.answer()
    table = window.snapshot_table()
    print(f"\nFinal window answer ({len(answer)} detections):")
    for pair in answer.ranked_answers():
        detection = table.get(pair.tid)
        print(
            f"  {pair.tid:>6}  object={detection.attributes['object']:<6} "
            f"speed={detection.score:6.1f}  Pr^{K}={pair.probability:.3f}"
        )

    # Cross-check the final window against the batch engine.
    batch = exact_ptk_query(table, TopKQuery(k=K), THRESHOLD)
    assert batch.answer_set == answer.answer_set
    print("\nBatch recomputation over the window snapshot agrees. ✓")

    # And a static, whole-history analysis for comparison.
    full = tracking_table(config)
    historic = exact_ptk_query(full, TopKQuery(k=K), THRESHOLD)
    print(
        f"Whole-history table: {len(full)} detections, "
        f"{len(full.multi_rules())} exclusion groups; "
        f"PT-{K} answer has {len(historic)} detections "
        f"(scan depth {historic.stats.scan_depth})."
    )


if __name__ == "__main__":
    main()
