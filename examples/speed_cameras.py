"""Attribute-level uncertainty: conflicting speed-camera readings.

Each vehicle passing a camera array gets several conflicting speed
estimates — one per camera, each with a calibration-derived probability
of being the correct reading.  That is *attribute-level* uncertainty:
one entity, alternative values.  The x-tuple layer embeds it into the
paper's tuple-level model (alternatives of one vehicle form a
generation rule) and answers the natural question at the entity level:

    which vehicles are, with probability at least p, among the k
    fastest?

Run::

    python examples/speed_cameras.py
"""

import numpy as np

from repro.model.xtuples import (
    XTuple,
    entity_ptk_query,
    entity_topk_probabilities,
    table_from_xtuples,
)
from repro.query.topk import TopKQuery

N_VEHICLES = 120
K = 8
THRESHOLD = 0.5
SEED = 21


def build_readings(rng: np.random.Generator):
    """Simulate camera arrays: 1-3 speed estimates per vehicle."""
    xtuples = []
    for v in range(N_VEHICLES):
        true_speed = float(rng.gamma(shape=9.0, scale=12.0))
        n_cameras = int(rng.integers(1, 4))
        reliabilities = rng.dirichlet(np.ones(n_cameras)) * rng.uniform(
            0.7, 0.99
        )
        alternatives = tuple(
            (
                true_speed * float(rng.uniform(0.92, 1.08)),
                max(1e-3, float(reliabilities[c])),
            )
            for c in range(n_cameras)
        )
        xtuples.append(
            XTuple(
                entity_id=f"vehicle{v}",
                alternatives=alternatives,
                attributes={"lane": int(rng.integers(1, 4))},
            )
        )
    return xtuples


def main() -> None:
    rng = np.random.default_rng(SEED)
    xtuples = build_readings(rng)
    table = table_from_xtuples(xtuples, name="speed_cameras")
    print(
        f"{len(xtuples)} vehicles, {len(table)} readings, "
        f"{len(table.multi_rules())} conflicting-reading groups"
    )

    query = TopKQuery(k=K)
    answer = entity_ptk_query(table, query, THRESHOLD)
    probabilities = entity_topk_probabilities(table, query)

    print(
        f"\nVehicles with Pr(among the {K} fastest) >= {THRESHOLD} "
        f"({len(answer)} of {len(xtuples)}):"
    )
    for entity in answer.answers:
        readings = [
            f"{score:.0f}km/h@{probability:.2f}"
            for score, probability in next(
                x for x in xtuples if x.entity_id == entity
            ).alternatives
        ]
        print(
            f"  {entity:>10}  Pr = {probabilities[entity]:.3f}   "
            f"readings: {', '.join(readings)}"
        )

    # Why entity-level matters: a vehicle whose probability mass is
    # split across conflicting readings can pass the entity threshold
    # even though no single reading does.
    split_winners = [
        entity
        for entity in answer.answers
        if all(
            probabilities[entity] > 0  # entity passes ...
            and p < THRESHOLD  # ... but no single reading could
            for _, p in next(
                x for x in xtuples if x.entity_id == entity
            ).alternatives
        )
    ]
    if split_winners:
        print(
            "\nVehicles that pass only because their conflicting readings "
            f"pool their probability mass: {split_winners}"
        )
        print(
            "  (tuple-level PT-k would return individual readings; the "
            "entity view sums the disjoint alternatives.)"
        )


if __name__ == "__main__":
    main()
