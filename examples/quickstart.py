"""Quickstart: the paper's running example, end to end.

Builds the panda-detection table (Table 1 of the paper), enumerates its
possible worlds (Table 2), computes every tuple's exact top-2 probability
(Table 3), and answers the PT-2 query with threshold 0.35 — which must
return {R2, R3, R5}, exactly as in Example 1 of the paper.

Run::

    python examples/quickstart.py
"""

from repro import (
    ExactVariant,
    SamplingConfig,
    TopKQuery,
    UncertainTable,
    exact_ptk_query,
    exact_topk_probabilities,
    sampled_ptk_query,
)
from repro.model.worlds import enumerate_possible_worlds


def build_panda_table() -> UncertainTable:
    """Table 1 of the paper, built through the public API."""
    table = UncertainTable(name="panda_sightings")
    table.add("R1", score=25, probability=0.3, location="A", sensor="S101")
    table.add("R2", score=21, probability=0.4, location="B", sensor="S206")
    table.add("R3", score=13, probability=0.5, location="B", sensor="S231")
    table.add("R4", score=12, probability=1.0, location="A", sensor="S101")
    table.add("R5", score=17, probability=0.8, location="E", sensor="S063")
    table.add("R6", score=11, probability=0.2, location="E", sensor="S732")
    # Co-located same-time sightings exclude each other (Section 1).
    table.add_exclusive("rule_B", "R2", "R3")
    table.add_exclusive("rule_E", "R5", "R6")
    return table


def main() -> None:
    table = build_panda_table()
    query = TopKQuery(k=2)  # top-2 longest durations

    print("=== Possible worlds (paper Table 2) ===")
    for world in sorted(
        enumerate_possible_worlds(table), key=lambda w: -w.probability
    ):
        members = ", ".join(sorted(world.tuple_ids))
        top2 = ", ".join(
            t.tid
            for t in query.answer_on_world([table.get(tid) for tid in world.tuple_ids])
        )
        print(f"  {{{members:<18}}}  Pr={world.probability:<6.3f} top-2: {top2}")

    print("\n=== Top-2 probabilities (paper Table 3) ===")
    probabilities = exact_topk_probabilities(table, query)
    for tid in sorted(probabilities):
        print(f"  {tid}: {probabilities[tid]:.3f}")

    print("\n=== PT-2 query, threshold p = 0.35 (paper Example 1) ===")
    answer = exact_ptk_query(table, query, threshold=0.35)
    print(f"  answer set: {sorted(answer.answers)}   (expected: R2, R3, R5)")
    print(
        f"  scan depth: {answer.stats.scan_depth} of {len(table)} tuples, "
        f"variant {answer.method}"
    )

    print("\n=== Same query via each exact variant ===")
    for variant in ExactVariant:
        result = exact_ptk_query(table, query, 0.35, variant=variant)
        print(
            f"  {variant.value:6s} -> {sorted(result.answers)}  "
            f"(DP extensions: {result.stats.subset_extensions})"
        )

    print("\n=== Same query via the sampling method (Section 5) ===")
    sampled = sampled_ptk_query(
        table,
        query,
        0.35,
        config=SamplingConfig(sample_size=20_000, progressive=False, seed=1),
    )
    print(f"  answer set: {sorted(sampled.answers)}")
    for tid in sorted(sampled.answers):
        print(
            f"  {tid}: estimated {sampled.probabilities[tid]:.3f} "
            f"vs exact {probabilities[tid]:.3f}"
        )


if __name__ == "__main__":
    main()
