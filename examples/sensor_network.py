"""Environmental-surveillance scenario: a larger sensor network.

The paper's motivating application (Section 1) scaled up: hundreds of
wildlife-detection records from a sensor field where co-located sensors
produce mutually exclusive readings.  Demonstrates:

* building an uncertain table programmatically from "sensor readings",
* threshold tuning — how the PT-k answer set shrinks as p grows,
* exact vs sampling trade-off on the same queries,
* persisting the table and answers with the io layer.

Run::

    python examples/sensor_network.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    SamplingConfig,
    TopKQuery,
    UncertainTable,
    exact_ptk_query,
    sampled_ptk_query,
)
from repro.io.jsonio import read_table_json, write_table_json
from repro.stats.metrics import precision_recall

N_LOCATIONS = 300
K = 20
SEED = 42


def build_sensor_table(rng: np.random.Generator) -> UncertainTable:
    """Synthesize detection records for a field of sensor clusters.

    Each location has 1-3 sensors; when several sensors detect the same
    event their durations disagree and at most one reading is correct —
    a multi-tuple generation rule, exactly like R2/R3 in the paper.
    """
    table = UncertainTable(name="sensor_field")
    tid = 0
    for location in range(N_LOCATIONS):
        n_sensors = int(rng.integers(1, 4))
        duration = float(rng.gamma(shape=3.0, scale=8.0))  # minutes
        members = []
        # readings of one event disagree slightly; confidences sum <= 1
        confidences = rng.dirichlet(np.ones(n_sensors)) * rng.uniform(0.5, 1.0)
        for s in range(n_sensors):
            record_id = f"rec{tid}"
            tid += 1
            table.add(
                record_id,
                score=duration * float(rng.uniform(0.85, 1.15)),
                probability=max(1e-3, float(confidences[s])),
                location=f"L{location}",
                sensor=f"S{location}_{s}",
            )
            members.append(record_id)
        if len(members) > 1:
            table.add_exclusive(f"loc{location}", *members)
    return table


def main() -> None:
    rng = np.random.default_rng(SEED)
    table = build_sensor_table(rng)
    print(
        f"Sensor field: {len(table)} readings, "
        f"{len(table.multi_rules())} co-location rules, "
        f"expected world size {table.expected_size():.1f}"
    )

    query = TopKQuery(k=K)

    print(f"\nThreshold tuning for the top-{K} longest-duration events:")
    print(f"  {'p':>5}  {'|answer|':>8}  {'scan depth':>10}")
    for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
        answer = exact_ptk_query(table, query, threshold)
        print(
            f"  {threshold:>5.1f}  {len(answer):>8}  "
            f"{answer.stats.scan_depth:>10}"
        )

    threshold = 0.5
    exact = exact_ptk_query(table, query, threshold)
    sampled = sampled_ptk_query(
        table,
        query,
        threshold,
        config=SamplingConfig(sample_size=2000, progressive=False, seed=SEED),
    )
    precision, recall = precision_recall(exact.answers, sampled.answers)
    print(
        f"\nSampling (2000 units) vs exact at p={threshold}: "
        f"precision={precision:.3f}, recall={recall:.3f}, "
        f"avg sample length {sampled.stats.avg_sample_length:.1f} of "
        f"{len(table)} tuples"
    )

    print(f"\nTop answers at p={threshold} (most probable first):")
    for pair in exact.ranked_answers()[:8]:
        reading = table.get(pair.tid)
        print(
            f"  {pair.tid:>7}  location={reading.attributes['location']:<5} "
            f"duration={reading.score:6.1f} min  Pr^{K}={pair.probability:.3f}"
        )

    # Persist and reload the table — the io layer round-trips rules.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sensor_field.json"
        write_table_json(table, path)
        restored = read_table_json(path)
        again = exact_ptk_query(restored, query, threshold)
        assert again.answer_set == exact.answer_set
        print(f"\nRound-tripped table through {path.name}: answers identical.")


if __name__ == "__main__":
    main()
