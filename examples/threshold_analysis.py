"""Analyst workflow: profiles, minimal k, and explanations.

Shows the library's analysis extensions on the iceberg scenario:

1. *Probability profiles* — Pr^j for every j <= k from one scan, giving
   the answer-set size as a function of k without re-running queries.
2. *Minimal k* — for each candidate iceberg, the smallest list depth at
   which it becomes a credible (Pr >= p) top-k member.
3. *Explanations* — for a tuple just below the threshold, which
   competitors suppress it and by how much (closed-form sensitivity,
   no re-computation).

Run::

    python examples/threshold_analysis.py
"""

from repro.core.exact import exact_ptk_query
from repro.core.explain import explain_tuple, format_explanation
from repro.core.profile import (
    answer_sizes_by_k,
    minimal_k_for_threshold,
    topk_probability_profile,
)
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.query.topk import TopKQuery

K = 20
THRESHOLD = 0.5


def main() -> None:
    table = generate_iceberg_table(IcebergConfig(n_tuples=800, n_rules=160))
    query = TopKQuery(k=K)

    print(f"Iceberg table: {len(table)} sightings, "
          f"{len(table.multi_rules())} co-location groups\n")

    sizes = answer_sizes_by_k(table, query, THRESHOLD)
    print(f"Answer-set size vs k (p = {THRESHOLD}):")
    for j in (1, 2, 5, 10, 15, 20):
        print(f"  k = {j:>2}: {sizes[j - 1]:>3} icebergs")

    minimal = minimal_k_for_threshold(table, query, THRESHOLD)
    passing = {tid: j for tid, j in minimal.items() if j is not None}
    latecomers = sorted(passing.items(), key=lambda kv: -kv[1])[:5]
    print("\nIcebergs needing the deepest list to become credible:")
    for tid, j in latecomers:
        print(f"  {tid:>6}: first passes the threshold at k = {j}")

    # find a near-miss tuple: highest profile value below the threshold
    profiles = topk_probability_profile(table, query)
    answer = exact_ptk_query(table, query, THRESHOLD)
    near_misses = sorted(
        (
            (tid, float(profile[-1]))
            for tid, profile in profiles.items()
            # genuinely suppressed: the competition (not a low membership
            # probability) is what keeps the tuple out
            if tid not in answer.answer_set
            and profile[-1] > 0.01
            and table.probability(tid) >= THRESHOLD
        ),
        key=lambda kv: -kv[1],
    )
    if near_misses:
        tid, probability = near_misses[0]
        print(
            f"\nClosest miss: {tid} with Pr^{K} = {probability:.3f} "
            f"(threshold {THRESHOLD}).  Why?"
        )
        explanation = explain_tuple(table, query, tid)
        print(format_explanation(explanation, limit=4))
        strongest = explanation.top_suppressors(1)[0]
        if probability + strongest.influence >= THRESHOLD:
            members = ", ".join(sorted(str(m) for m in strongest.unit.members))
            print(
                f"\n  -> removing {{{members}}} alone would lift {tid} "
                f"over the threshold."
            )


if __name__ == "__main__":
    main()
