"""Iceberg monitoring: the paper's Section 6.1 real-data scenario.

The International Ice Patrol tracks icebergs near the Grand Banks; each
sighting has a confidence level depending on the source (visual, radar,
satellite) and co-located same-time sightings of one iceberg exclude
each other.  The analyst wants the icebergs most likely to be among the
k longest-drifting ones.

This example generates the simulated IIP table (see DESIGN.md for the
substitution rationale), then contrasts the three query semantics the
paper compares — PT-k, U-TopK, U-KRanks — showing why the threshold
semantics surfaces tuples the other two miss.

Run::

    python examples/iceberg_monitoring.py
"""

from repro.bench.comparison import iceberg_comparison, ukranks_table
from repro.bench.reporting import render_table
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.query.engine import UncertainDB

K = 10
THRESHOLD = 0.5


def main() -> None:
    config = IcebergConfig()  # 4,231 tuples, 825 rules, like the paper
    table = generate_iceberg_table(config)
    print(
        f"Simulated IIP iceberg sightings: {len(table)} records, "
        f"{len(table.multi_rules())} co-location rules"
    )

    study = iceberg_comparison(k=K, threshold=THRESHOLD, table=table)
    comparison = study.comparison

    print(f"\nPT-{K} answer (top-{K} probability >= {THRESHOLD}):")
    for pair in comparison.ptk.ranked_answers():
        print(f"  {pair.tid:>6}  Pr^{K} = {pair.probability:.3f}")

    print(
        f"\nU-TopK answer (most probable top-{K} vector, "
        f"probability {comparison.utopk.probability:.2e}):"
    )
    print("  <" + ", ".join(str(t) for t in comparison.utopk.vector) + ">")

    print(render_table(ukranks_table(study)))

    print(render_table(study.answer_table))

    # The paper's qualitative observations, re-derived on this data:
    ptk_only = comparison.ptk.answer_set - set(comparison.utopk.vector)
    if ptk_only:
        print(
            "\nTuples PT-k surfaces that the U-TopK vector misses "
            f"(high top-{K} probability, yet not in the single most "
            f"probable vector): {sorted(ptk_only, key=str)}"
        )
    duplicated = [
        tid
        for tid in set(comparison.ukranks.tuple_ids)
        if comparison.ukranks.tuple_ids.count(tid) > 1
    ]
    if duplicated:
        print(
            "Tuples occupying several U-KRanks positions "
            f"(rank-sensitive duplication): {sorted(duplicated, key=str)}"
        )

    # A drill-down an analyst would actually run: restrict to the most
    # confident sources only.
    db = UncertainDB()
    db.register(table, name="iceberg")
    from repro.query.predicates import AttributePredicate
    from repro.query.topk import TopKQuery

    confident = TopKQuery(
        k=K, predicate=AttributePredicate("confidence", lambda c: c >= 0.7)
    )
    answer = db.ptk("iceberg", k=K, threshold=THRESHOLD, query=confident)
    print(
        f"\nPT-{K} restricted to sightings with confidence >= 0.7: "
        f"{len(answer)} answers, scan depth {answer.stats.scan_depth}"
    )


if __name__ == "__main__":
    main()
