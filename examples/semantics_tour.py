"""A tour of uncertain top-k semantics on one dataset.

Builds one synthetic table and answers the same "top-k" question under
every semantics the library implements, printing the answers side by
side — the quickest way to understand how the paper's PT-k semantics
differs from U-TopK, U-KRanks, and Global-Topk (and when each is the
right tool).

Run::

    python examples/semantics_tour.py
"""

from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.engine import UncertainDB
from repro.semantics.extras import expected_ranks
from repro.query.topk import TopKQuery

K = 5
THRESHOLD = 0.4


def main() -> None:
    table = generate_synthetic_table(
        SyntheticConfig(n_tuples=500, n_rules=60, seed=99)
    )
    db = UncertainDB()
    db.register(table, name="demo")

    comparison = db.compare_semantics("demo", k=K, threshold=THRESHOLD)
    probabilities = db.topk_probabilities("demo", k=K)

    print(f"Table: {len(table)} tuples, {len(table.multi_rules())} rules\n")

    print(f"PT-{K} (threshold {THRESHOLD}) — every tuple with Pr^k >= p:")
    for pair in comparison.ptk.ranked_answers():
        print(f"  {pair.tid:>7}  Pr^{K} = {pair.probability:.3f}")

    print(
        f"\nU-TopK — the single most probable top-{K} *vector* "
        f"(probability {comparison.utopk.probability:.2e}):"
    )
    print("  <" + ", ".join(str(t) for t in comparison.utopk.vector) + ">")

    print(f"\nU-KRanks — most probable tuple at each rank:")
    for rank, (tid, probability) in enumerate(comparison.ukranks.winners, 1):
        print(f"  rank {rank}: {tid:>7}  (Pr at this rank: {probability:.3f})")

    print(f"\nGlobal-Top{K} — the {K} tuples of highest top-{K} probability:")
    for tid, probability in db.global_topk("demo", k=K):
        print(f"  {tid:>7}  Pr^{K} = {probability:.3f}")

    print(f"\nExpected-rank top-{K} — smallest E[rank] (absence penalised):")
    for tid, value in db.expected_rank_topk("demo", k=K):
        print(f"  {tid:>7}  E[rank] = {value:.2f}")

    ranks = expected_ranks(table, TopKQuery(k=K))
    print("\nConditional expected ranks of the PT-k answers:")
    for tid in comparison.ptk.answers:
        print(f"  {tid:>7}  E[rank | present] = {ranks[tid]:.2f}")

    # The structural differences, spelled out:
    ptk_set = comparison.ptk.answer_set
    missed_by_vector = sorted(
        (ptk_set - set(comparison.utopk.vector)), key=str
    )
    if missed_by_vector:
        print(
            "\nHigh-probability tuples absent from the U-TopK vector: "
            f"{missed_by_vector}"
        )
        print(
            "  (the most probable vector is rank-sensitive: a tuple can "
            "be likely to be in the top-k without any single vector "
            "containing it being likely — the paper's core motivation)"
        )
    low_pr_winners = sorted(
        (
            tid
            for tid in set(comparison.ukranks.tuple_ids)
            if probabilities.get(tid, 0.0) < THRESHOLD
        ),
        key=str,
    )
    if low_pr_winners:
        print(
            "U-KRanks winners whose overall top-k probability fails the "
            f"threshold: {low_pr_winners}"
        )


if __name__ == "__main__":
    main()
